//! Deficit-round-robin scheduling across sessions.
//!
//! Every session owns a **bounded** FIFO of pending requests; dispatchers
//! pull work through a deficit-round-robin ring over the sessions that
//! have anything queued. Each request costs [`REQUEST_COST`] units and a
//! session earns `weight × quantum` units each time the ring reaches it,
//! so over any window the dispatch ratio between backlogged sessions
//! converges to their weight ratio — one chatty tenant cannot starve the
//! rest, it can only fill (and overflow) its own queue. A submit against a
//! full queue fails immediately with the depth, which the service turns
//! into a structured `Overloaded { retry_after_ms }` shed.
//!
//! The scheduler is deliberately time-free: fairness here is a property of
//! dispatch *order*, so its tests are exact and deterministic — no clocks,
//! no sleeps (the satellite requirement that fairness suites not flake on
//! slow CI hosts).

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Cost of one request in deficit units. A session at the ring head may
/// dispatch as long as its accumulated deficit covers this.
pub const REQUEST_COST: u64 = 100;

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The session's bounded queue is full; `queued` requests are ahead.
    QueueFull {
        /// Depth of the full queue (the shed hint scales with this).
        queued: usize,
    },
    /// The session was never registered or already closed.
    UnknownSession,
    /// The scheduler is shutting down; nothing new is accepted.
    Shutdown,
}

#[derive(Debug)]
struct SessionQueue<T> {
    queue: VecDeque<T>,
    deficit: u64,
    weight: u32,
    in_ring: bool,
}

#[derive(Debug)]
struct State<T> {
    sessions: HashMap<u64, SessionQueue<T>>,
    /// Sessions with queued work, in dispatch order. The head session
    /// stays at the head while its deficit covers further requests, which
    /// is what makes a weight-w session dispatch w requests per round.
    ring: VecDeque<u64>,
    queued: usize,
    shutdown: bool,
}

/// A deficit-round-robin scheduler over per-session bounded queues.
#[derive(Debug)]
pub struct DrrScheduler<T> {
    state: Mutex<State<T>>,
    work: Condvar,
    quantum: u64,
    capacity: usize,
}

impl<T> DrrScheduler<T> {
    /// Creates a scheduler: `quantum` deficit units per ring visit per
    /// unit weight (use [`REQUEST_COST`] for "weight = requests per
    /// round"), `capacity` requests per session queue.
    pub fn new(quantum: u64, capacity: usize) -> Self {
        DrrScheduler {
            state: Mutex::new(State {
                sessions: HashMap::new(),
                ring: VecDeque::new(),
                queued: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            quantum: quantum.max(1),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a session with a fairness weight (≥ 1).
    pub fn register(&self, session: u64, weight: u32) {
        let mut st = self.lock();
        st.sessions.entry(session).or_insert(SessionQueue {
            queue: VecDeque::new(),
            deficit: 0,
            weight: weight.max(1),
            in_ring: false,
        });
    }

    /// Removes a session, returning its still-queued requests so the
    /// caller can answer them (e.g. with a session-closed error).
    pub fn deregister(&self, session: u64) -> Vec<T> {
        let mut st = self.lock();
        let Some(sq) = st.sessions.remove(&session) else {
            return Vec::new();
        };
        st.queued -= sq.queue.len();
        st.ring.retain(|&s| s != session);
        sq.queue.into_iter().collect()
    }

    /// Enqueues a request for a session. Returns the queue depth including
    /// this request, or the structured refusal.
    pub fn submit(&self, session: u64, item: T) -> Result<usize, SubmitError> {
        let mut st = self.lock();
        if st.shutdown {
            return Err(SubmitError::Shutdown);
        }
        let capacity = self.capacity;
        let Some(sq) = st.sessions.get_mut(&session) else {
            return Err(SubmitError::UnknownSession);
        };
        if sq.queue.len() >= capacity {
            return Err(SubmitError::QueueFull {
                queued: sq.queue.len(),
            });
        }
        sq.queue.push_back(item);
        let depth = sq.queue.len();
        if !sq.in_ring {
            sq.in_ring = true;
            st.ring.push_back(session);
        }
        st.queued += 1;
        drop(st);
        self.work.notify_one();
        Ok(depth)
    }

    /// Blocks until a request is dispatchable and returns it with its
    /// session id; `None` once the scheduler shut down.
    pub fn next(&self) -> Option<(u64, T)> {
        let mut st = self.lock();
        loop {
            if st.shutdown {
                return None;
            }
            if let Some(out) = Self::pop_locked(&mut st, self.quantum) {
                return Some(out);
            }
            st = self.work.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking [`next`](DrrScheduler::next), for deterministic tests.
    pub fn try_next(&self) -> Option<(u64, T)> {
        let mut st = self.lock();
        if st.shutdown {
            return None;
        }
        Self::pop_locked(&mut st, self.quantum)
    }

    fn pop_locked(st: &mut State<T>, quantum: u64) -> Option<(u64, T)> {
        while let Some(&sid) = st.ring.front() {
            let Some(sq) = st.sessions.get_mut(&sid) else {
                st.ring.pop_front();
                continue;
            };
            if sq.queue.is_empty() {
                sq.in_ring = false;
                sq.deficit = 0;
                st.ring.pop_front();
                continue;
            }
            // A fresh visit earns the session its quantum; while the
            // deficit covers requests it keeps the head (the DRR "burst"
            // that realizes weighted ratios).
            if sq.deficit < REQUEST_COST {
                sq.deficit += quantum * u64::from(sq.weight);
            }
            if sq.deficit >= REQUEST_COST {
                sq.deficit -= REQUEST_COST;
                let item = sq.queue.pop_front().expect("non-empty queue");
                st.queued -= 1;
                if sq.queue.is_empty() {
                    sq.in_ring = false;
                    sq.deficit = 0;
                    st.ring.pop_front();
                } else if sq.deficit < REQUEST_COST {
                    // Deficit spent: rotate to the back of the ring.
                    st.ring.rotate_left(1);
                }
                return Some((sid, item));
            }
            // Quantum too small to cover one request this visit; keep the
            // earned deficit and move on.
            st.ring.rotate_left(1);
        }
        None
    }

    /// Total queued requests across all sessions.
    pub fn queued(&self) -> usize {
        self.lock().queued
    }

    /// Stops the scheduler: wakes every blocked dispatcher (they observe
    /// `None`) and drains all queued requests for the caller to answer.
    pub fn shutdown(&self) -> Vec<(u64, T)> {
        let mut st = self.lock();
        st.shutdown = true;
        let mut drained = Vec::with_capacity(st.queued);
        let sids: Vec<u64> = st.sessions.keys().copied().collect();
        for sid in sids {
            let sq = st.sessions.get_mut(&sid).expect("listed session");
            while let Some(item) = sq.queue.pop_front() {
                drained.push((sid, item));
            }
            sq.in_ring = false;
        }
        st.ring.clear();
        st.queued = 0;
        drop(st);
        self.work.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &DrrScheduler<u32>) -> Vec<u64> {
        let mut order = Vec::new();
        while let Some((sid, _)) = s.try_next() {
            order.push(sid);
        }
        order
    }

    #[test]
    fn equal_weights_alternate() {
        let s = DrrScheduler::new(REQUEST_COST, 64);
        s.register(1, 1);
        s.register(2, 1);
        for i in 0..6 {
            s.submit(1, i).unwrap();
            s.submit(2, i).unwrap();
        }
        assert_eq!(drain(&s), vec![1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn weights_set_the_dispatch_ratio() {
        let s = DrrScheduler::new(REQUEST_COST, 64);
        s.register(1, 2); // premium analyst: twice the share
        s.register(2, 1);
        for i in 0..12 {
            s.submit(1, i).unwrap();
        }
        for i in 0..6 {
            s.submit(2, i).unwrap();
        }
        let order = drain(&s);
        // While both are backlogged, session 1 dispatches twice per round.
        assert_eq!(&order[..9], &[1, 1, 2, 1, 1, 2, 1, 1, 2]);
        let ones = order.iter().filter(|&&s| s == 1).count();
        assert_eq!(ones, 12);
    }

    #[test]
    fn chatty_session_cannot_starve_a_quiet_one() {
        let s = DrrScheduler::new(REQUEST_COST, 1024);
        s.register(1, 1);
        s.register(2, 1);
        for i in 0..1000 {
            s.submit(1, i).unwrap();
        }
        // One request from the quiet session lands behind a 1000-deep
        // backlog — DRR serves it on the very next round.
        s.submit(2, 0).unwrap();
        let order = drain(&s);
        let pos = order.iter().position(|&sid| sid == 2).unwrap();
        assert!(pos <= 1, "quiet session served immediately, got {pos}");
    }

    #[test]
    fn bounded_queue_sheds_with_depth() {
        let s = DrrScheduler::new(REQUEST_COST, 2);
        s.register(1, 1);
        assert_eq!(s.submit(1, 0), Ok(1));
        assert_eq!(s.submit(1, 1), Ok(2));
        assert_eq!(s.submit(1, 2), Err(SubmitError::QueueFull { queued: 2 }));
        // Draining one slot re-opens admission.
        assert!(s.try_next().is_some());
        assert_eq!(s.submit(1, 3), Ok(2));
    }

    #[test]
    fn unknown_session_and_shutdown_are_structured() {
        let s: DrrScheduler<u32> = DrrScheduler::new(REQUEST_COST, 4);
        assert_eq!(s.submit(9, 0), Err(SubmitError::UnknownSession));
        s.register(1, 1);
        s.submit(1, 7).unwrap();
        let drained = s.shutdown();
        assert_eq!(drained, vec![(1, 7)]);
        assert_eq!(s.submit(1, 8), Err(SubmitError::Shutdown));
        assert!(s.next().is_none(), "dispatchers observe shutdown");
    }

    #[test]
    fn deregister_returns_pending_work() {
        let s = DrrScheduler::new(REQUEST_COST, 8);
        s.register(1, 1);
        s.register(2, 1);
        s.submit(1, 10).unwrap();
        s.submit(1, 11).unwrap();
        s.submit(2, 20).unwrap();
        assert_eq!(s.deregister(1), vec![10, 11]);
        assert_eq!(s.queued(), 1);
        assert_eq!(drain(&s), vec![2]);
    }

    #[test]
    fn blocking_next_wakes_on_submit() {
        let s = std::sync::Arc::new(DrrScheduler::new(REQUEST_COST, 4));
        s.register(1, 1);
        let consumer = {
            let s = s.clone();
            std::thread::spawn(move || s.next())
        };
        s.submit(1, 42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some((1, 42)));
    }
}
