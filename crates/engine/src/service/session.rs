//! Investigation sessions.
//!
//! A session is one analyst's interactive investigation: its own
//! [`Engine`] (and therefore its own plan-resolution cache — repeated
//! queries within an investigation skip the shared phase without cache
//! interference from other tenants), a fairness weight, and named variable
//! bindings that `$name` references in query text expand to before
//! parsing. Sessions are cheap: the engine shares the process-wide scan
//! pool, so a thousand sessions still run on one executor.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::engine::{Engine, EngineConfig};

/// A session handle. Plain data — safe to log, copy, and send to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

#[derive(Debug)]
struct Session {
    engine: Engine,
    weight: u32,
    /// `$name → value` textual bindings, longest-name-first at expansion
    /// so `$hostname` never partially matches a `$host` binding.
    bindings: BTreeMap<String, String>,
}

/// The session registry.
#[derive(Debug)]
pub struct SessionManager {
    sessions: Mutex<HashMap<u64, Session>>,
    next_id: AtomicU64,
    max_sessions: usize,
}

/// The registry is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionLimit {
    /// The configured cap.
    pub max: usize,
}

impl SessionManager {
    /// Creates a registry capped at `max_sessions` concurrent sessions.
    pub fn new(max_sessions: usize) -> Self {
        SessionManager {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_sessions: max_sessions.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Session>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a session with its own engine built from `config`.
    pub fn create(&self, config: EngineConfig, weight: u32) -> Result<SessionId, SessionLimit> {
        let mut sessions = self.lock();
        if sessions.len() >= self.max_sessions {
            return Err(SessionLimit {
                max: self.max_sessions,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        sessions.insert(
            id,
            Session {
                engine: Engine::new(config),
                weight: weight.max(1),
                bindings: BTreeMap::new(),
            },
        );
        Ok(SessionId(id))
    }

    /// Closes a session. Returns whether it existed. In-flight queries
    /// keep their engine clone and finish normally.
    pub fn close(&self, id: SessionId) -> bool {
        self.lock().remove(&id.0).is_some()
    }

    /// Number of open sessions.
    pub fn count(&self) -> usize {
        self.lock().len()
    }

    /// The session's fairness weight, if it exists.
    pub fn weight(&self, id: SessionId) -> Option<u32> {
        self.lock().get(&id.0).map(|s| s.weight)
    }

    /// Sets (or replaces) a `$name` binding. Names are identifiers:
    /// `[A-Za-z_][A-Za-z0-9_]*`. Returns false for an unknown session or
    /// an invalid name.
    pub fn bind(&self, id: SessionId, name: &str, value: &str) -> bool {
        if !valid_binding_name(name) {
            return false;
        }
        let mut sessions = self.lock();
        let Some(session) = sessions.get_mut(&id.0) else {
            return false;
        };
        session.bindings.insert(name.to_string(), value.to_string());
        true
    }

    /// Clones the session's engine and expands its bindings into `text`:
    /// the immutable snapshot a dispatcher executes with, so closing the
    /// session mid-flight cannot invalidate running work.
    pub fn prepare(&self, id: SessionId, text: &str) -> Option<(Engine, String)> {
        let sessions = self.lock();
        let session = sessions.get(&id.0)?;
        Some((
            session.engine.clone(),
            expand_bindings(text, &session.bindings),
        ))
    }

    /// `(hits, misses)` of the session's private plan cache.
    pub fn plan_cache_counters(&self, id: SessionId) -> Option<(u64, u64)> {
        self.lock()
            .get(&id.0)
            .map(|s| s.engine.plan_cache_counters())
    }
}

fn valid_binding_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Replaces every `$name` occurrence with its bound value. Longest names
/// win (`$hostname` before `$host`); unbound references pass through and
/// surface as parse errors, which is the right diagnostic for a typo.
fn expand_bindings(text: &str, bindings: &BTreeMap<String, String>) -> String {
    if bindings.is_empty() || !text.contains('$') {
        return text.to_string();
    }
    // BTreeMap iterates name-ascending; collect and sort longest-first.
    let mut names: Vec<&str> = bindings.keys().map(String::as_str).collect();
    names.sort_by_key(|n| std::cmp::Reverse(n.len()));
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    'outer: while let Some(pos) = rest.find('$') {
        out.push_str(&rest[..pos]);
        let after = &rest[pos + 1..];
        for name in &names {
            if let Some(tail) = after.strip_prefix(name) {
                out.push_str(&bindings[*name]);
                rest = tail;
                continue 'outer;
            }
        }
        out.push('$');
        rest = after;
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_open_bind_and_close() {
        let mgr = SessionManager::new(8);
        let s = mgr.create(EngineConfig::default(), 2).unwrap();
        assert_eq!(mgr.count(), 1);
        assert_eq!(mgr.weight(s), Some(2));
        assert!(mgr.bind(s, "host", "1"));
        assert!(!mgr.bind(s, "9bad", "1"), "names must be identifiers");
        assert!(!mgr.bind(SessionId(999), "host", "1"));
        let (_, text) = mgr.prepare(s, "agentid = $host").unwrap();
        assert_eq!(text, "agentid = 1");
        assert!(mgr.close(s));
        assert!(!mgr.close(s));
        assert!(mgr.prepare(s, "x").is_none());
    }

    #[test]
    fn session_cap_is_enforced() {
        let mgr = SessionManager::new(2);
        mgr.create(EngineConfig::default(), 1).unwrap();
        mgr.create(EngineConfig::default(), 1).unwrap();
        assert_eq!(
            mgr.create(EngineConfig::default(), 1),
            Err(SessionLimit { max: 2 })
        );
        // Closing one frees a slot.
        let victim = SessionId(1);
        assert!(mgr.close(victim));
        assert!(mgr.create(EngineConfig::default(), 1).is_ok());
    }

    #[test]
    fn longest_binding_name_wins() {
        let mut b = BTreeMap::new();
        b.insert("host".to_string(), "SHORT".to_string());
        b.insert("hostname".to_string(), "LONG".to_string());
        assert_eq!(
            expand_bindings("$hostname and $host and $unbound", &b),
            "LONG and SHORT and $unbound"
        );
        assert_eq!(expand_bindings("no refs", &b), "no refs");
        assert_eq!(expand_bindings("trailing $", &b), "trailing $");
    }

    #[test]
    fn sessions_get_private_plan_caches() {
        let mgr = SessionManager::new(4);
        let a = mgr.create(EngineConfig::default(), 1).unwrap();
        let b = mgr.create(EngineConfig::default(), 1).unwrap();
        let (ea, _) = mgr.prepare(a, "x").unwrap();
        let (eb, _) = mgr.prepare(b, "x").unwrap();
        // Distinct engines → distinct cache counters (both start at 0/0
        // but are independent objects; same-session clones share).
        assert_eq!(ea.plan_cache_counters(), (0, 0));
        assert_eq!(eb.plan_cache_counters(), (0, 0));
        let (ea2, _) = mgr.prepare(a, "y").unwrap();
        assert_eq!(mgr.plan_cache_counters(a), Some(ea2.plan_cache_counters()));
    }
}
