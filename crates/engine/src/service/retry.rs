//! Client-side retry with jittered exponential backoff.
//!
//! Shed requests come back as `Overloaded { retry_after_ms }`. Retrying
//! them all at once would just re-create the spike that caused the shed,
//! so the helper waits the server's hint **or** a jittered exponential
//! backoff, whichever is longer, before trying again. Jitter is a
//! deterministic xorshift stream seeded per client — reproducible in
//! tests and benches, decorrelated across clients in production (each
//! client seeds differently).

use std::time::Duration;

use super::ServiceError;

/// Backoff policy. Delays are `base × 2^attempt` capped at `max`, jittered
/// to a uniform draw from `[delay/2, delay]` ("equal jitter").
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    /// First-retry delay.
    pub base: Duration,
    /// Delay cap.
    pub max: Duration,
    /// Total attempts (the first try counts; 3 means try, retry, retry).
    pub max_attempts: u32,
    /// Jitter stream seed.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(5),
            max: Duration::from_millis(500),
            max_attempts: 8,
            seed: 0x5EED_1E55,
        }
    }
}

/// xorshift64* — tiny, deterministic, no external dependency.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Runs `op`, retrying **only** on [`ServiceError::Overloaded`] with
/// jittered exponential backoff via `sleep`. Every other outcome — success
/// or a different error — returns immediately. After `max_attempts` the
/// last `Overloaded` error is returned, its `retry_after_ms` still intact
/// for a caller that wants to queue the work elsewhere.
pub fn retry_overloaded_with<T>(
    policy: &BackoffPolicy,
    mut sleep: impl FnMut(Duration),
    mut op: impl FnMut() -> Result<T, ServiceError>,
) -> Result<T, ServiceError> {
    let mut rng = policy.seed | 1; // xorshift must not start at 0
    let attempts = policy.max_attempts.max(1);
    for attempt in 0..attempts {
        match op() {
            Err(ServiceError::Overloaded { retry_after_ms }) => {
                if attempt + 1 == attempts {
                    return Err(ServiceError::Overloaded { retry_after_ms });
                }
                let exp = policy
                    .base
                    .saturating_mul(1u32 << attempt.min(20))
                    .min(policy.max);
                let half = exp / 2;
                let jitter_range = exp.saturating_sub(half).as_millis() as u64;
                let jittered = half
                    + Duration::from_millis(if jitter_range == 0 {
                        0
                    } else {
                        xorshift(&mut rng) % (jitter_range + 1)
                    });
                sleep(jittered.max(Duration::from_millis(retry_after_ms)));
            }
            other => return other,
        }
    }
    unreachable!("loop returns on the final attempt")
}

/// [`retry_overloaded_with`] sleeping on the real clock.
pub fn retry_overloaded<T>(
    policy: &BackoffPolicy,
    op: impl FnMut() -> Result<T, ServiceError>,
) -> Result<T, ServiceError> {
    retry_overloaded_with(policy, std::thread::sleep, op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overloaded(ms: u64) -> ServiceError {
        ServiceError::Overloaded { retry_after_ms: ms }
    }

    #[test]
    fn succeeds_after_sheds_and_respects_the_hint() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(4),
            max: Duration::from_millis(100),
            max_attempts: 5,
            seed: 7,
        };
        let mut sleeps = Vec::new();
        let mut calls = 0;
        let out = retry_overloaded_with(
            &policy,
            |d| sleeps.push(d),
            || {
                calls += 1;
                if calls < 4 {
                    Err(overloaded(50))
                } else {
                    Ok(calls)
                }
            },
        );
        assert_eq!(out.unwrap(), 4);
        assert_eq!(sleeps.len(), 3);
        for s in &sleeps {
            // Never shorter than the server's hint, never absurdly long.
            assert!(*s >= Duration::from_millis(50), "hint respected: {s:?}");
            assert!(*s <= Duration::from_millis(150));
        }
    }

    #[test]
    fn backoff_grows_and_jitter_stays_in_band() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(8),
            max: Duration::from_millis(64),
            max_attempts: 6,
            seed: 42,
        };
        let mut sleeps = Vec::new();
        let out: Result<(), _> =
            retry_overloaded_with(&policy, |d| sleeps.push(d), || Err(overloaded(0)));
        assert!(matches!(out, Err(ServiceError::Overloaded { .. })));
        assert_eq!(sleeps.len(), 5, "no sleep after the final attempt");
        for (i, s) in sleeps.iter().enumerate() {
            let exp = Duration::from_millis(8 << i).min(policy.max);
            assert!(*s >= exp / 2 && *s <= exp, "attempt {i}: {s:?} vs {exp:?}");
        }
    }

    #[test]
    fn non_overload_errors_pass_through_immediately() {
        let mut slept = false;
        let out: Result<(), _> = retry_overloaded_with(
            &BackoffPolicy::default(),
            |_| slept = true,
            || Err(ServiceError::ShuttingDown),
        );
        assert!(matches!(out, Err(ServiceError::ShuttingDown)));
        assert!(!slept);
    }

    #[test]
    fn jitter_streams_are_deterministic_per_seed() {
        let run = |seed| {
            let policy = BackoffPolicy {
                seed,
                ..BackoffPolicy::default()
            };
            let mut sleeps = Vec::new();
            let _: Result<(), _> =
                retry_overloaded_with(&policy, |d| sleeps.push(d), || Err(overloaded(0)));
            sleeps
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different clients decorrelate");
    }
}
