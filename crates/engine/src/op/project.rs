//! `Project` / `Aggregate`: the projection operator closing the pipeline.
//!
//! Consumes the joined tuple frontier and produces the final result table:
//! return items, grouping + aggregation, having, distinct, order by,
//! limit. Two evaluation paths, selected by
//! `EngineConfig::compiled_projection`:
//!
//! * **slot-compiled** (default): every name is resolved to a dense slot
//!   index before the tuple loop, the row context is a flat [`SlotRow`],
//!   and only the event slots the projection reads are materialized;
//! * **dynamic**: the [`RowCtx`] hash-map path, kept for ablation and as
//!   the fallback when an expression resists compilation.
//!
//! On the late-materialization path the frontier is a ref arena and the
//! surviving tuples' events are materialized here, exactly once.

use std::collections::HashMap;

use aiql_lang::{Expr, SortDir};
use aiql_model::{EntityId, Value};
use aiql_storage::EventStore;

use crate::analyze::AnalyzedMultievent;
use crate::error::EngineError;
use crate::eval::{self, agg_key, RowCtx, SlotEnv, SlotExpr, SlotRow};
use crate::governor::{GovGate, Governor};
use crate::op::{
    ExecEnv, Frontier, OpIo, Operator, PartTable, PipelineState, RefArena, Tuple, NO_REF, NO_VAR,
};
use crate::result::ResultTable;

/// The projection operator.
#[derive(Debug, Clone, Copy)]
pub struct Project {
    /// Whether the query aggregates (labels the operator `Aggregate`).
    aggregated: bool,
}

impl Project {
    pub(crate) fn new(aggregated: bool) -> Self {
        Project { aggregated }
    }
}

impl Operator for Project {
    fn kind(&self) -> &'static str {
        if self.aggregated {
            "Aggregate"
        } else {
            "Project"
        }
    }

    fn run(&self, env: &ExecEnv<'_>, st: &mut PipelineState) -> Result<OpIo, EngineError> {
        let rows_in = st.frontier.len();
        let mut table = match &st.frontier {
            Frontier::Refs(arena) => {
                let compiled = env
                    .config
                    .compiled_projection
                    .then(|| compile_projection(env.store, env.a))
                    .flatten();
                match &compiled {
                    Some(cp) => {
                        project_compiled(env.store, env.a, cp, arena.len(), env.gov(), |i, row| {
                            fill_slots_arena(arena, &env.parts, cp, i, row);
                        })?
                    }
                    None => project_with(env.store, env.a, arena.len(), env.gov(), |i, ctx| {
                        fill_ctx_arena(env.a, arena, &env.parts, i, ctx);
                    })?,
                }
            }
            Frontier::Events(tuples) => {
                project_with(env.store, env.a, tuples.len(), env.gov(), |i, ctx| {
                    fill_ctx_tuple(env.a, &tuples[i], ctx);
                })?
            }
        };
        table.truncated = st.truncated;
        let rows_out = table.rows.len();
        st.table = Some(table);
        Ok(OpIo {
            rows_in,
            rows_out,
            fanout: 1,
            ..OpIo::default()
        })
    }
}

/// Resets a reused row context (keeping map capacity across tuples).
fn clear_ctx(ctx: &mut RowCtx<'_>) {
    ctx.var_entity.clear();
    ctx.events.clear();
    ctx.aliases.clear();
    ctx.agg_values.clear();
}

/// Populates the row context from a materialized tuple.
fn fill_ctx_tuple<'a>(a: &'a AnalyzedMultievent, t: &Tuple, ctx: &mut RowCtx<'a>) {
    clear_ctx(ctx);
    for (vi, var) in a.vars.iter().enumerate() {
        if let Some(id) = t.vars[vi] {
            ctx.var_entity.insert(var.name.as_str(), id);
        }
    }
    for (pi, p) in a.patterns.iter().enumerate() {
        if let Some(e) = t.events[pi] {
            ctx.events.insert(p.name.as_str(), e);
        }
    }
}

/// Populates the row context straight from the ref arena, materializing the
/// tuple's events on the fly.
fn fill_ctx_arena<'a>(
    a: &'a AnalyzedMultievent,
    arena: &RefArena,
    parts: &PartTable<'_>,
    i: usize,
    ctx: &mut RowCtx<'a>,
) {
    clear_ctx(ctx);
    for (vi, var) in a.vars.iter().enumerate() {
        let id = arena.vars_of(i)[vi];
        if id != NO_VAR {
            ctx.var_entity.insert(var.name.as_str(), EntityId(id));
        }
    }
    for (pi, p) in a.patterns.iter().enumerate() {
        let r = arena.events_of(i)[pi];
        if r != NO_REF {
            ctx.events.insert(p.name.as_str(), parts.event(r));
        }
    }
}

/// Aggregate accumulator.
#[derive(Debug, Clone, Default)]
struct AggAcc {
    count: u64,
    sum: f64,
    all_int: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggAcc {
    fn new() -> Self {
        AggAcc {
            all_int: true,
            ..Default::default()
        }
    }

    fn add(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        if !matches!(v, Value::Int(_)) {
            self.all_int = false;
        }
        self.min = Some(match self.min {
            Some(m) if eval::cmp_values(&m, &v).is_le() => m,
            _ => v,
        });
        self.max = Some(match self.max {
            Some(m) if eval::cmp_values(&m, &v).is_ge() => m,
            _ => v,
        });
    }

    fn finalize(&self, func: aiql_lang::AggFunc) -> Value {
        use aiql_lang::AggFunc::*;
        match func {
            Count => Value::Int(self.count as i64),
            Sum => {
                if self.all_int {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            Min => self.min.unwrap_or(Value::Null),
            Max => self.max.unwrap_or(Value::Null),
        }
    }
}

/// Collects every aggregate node appearing in the return items and having
/// clause.
pub(crate) fn collect_aggs(a: &AnalyzedMultievent) -> Vec<(String, aiql_lang::AggFunc, Expr)> {
    let mut out: Vec<(String, aiql_lang::AggFunc, Expr)> = Vec::new();
    let mut visit = |e: &Expr| {
        e.visit(&mut |node| {
            if let Expr::Agg { func, arg } = node {
                let key = agg_key(node);
                if !out.iter().any(|(k, _, _)| k == &key) {
                    out.push((key, *func, (**arg).clone()));
                }
            }
        });
    };
    for item in &a.ret.items {
        visit(&item.expr);
    }
    if let Some(h) = &a.having {
        visit(h);
    }
    out
}

/// Column header for a return item.
fn column_name(item: &aiql_lang::ReturnItem) -> String {
    item.alias
        .clone()
        .unwrap_or_else(|| aiql_lang::pretty::print_expr(&item.expr))
}

/// A fully slot-compiled projection: return items, grouping keys, having
/// filter, and aggregate arguments with every name resolved to a dense
/// slot, plus the sets of event/variable slots the projection actually
/// reads. Tuples bind into a reused [`SlotRow`] — no per-tuple hash maps —
/// and events outside `used_events` are never materialized.
struct CompiledProjection {
    /// Compiled return items, in column order.
    items: Vec<SlotExpr>,
    /// Alias slot written after evaluating each item (aggregated path).
    alias_slot: Vec<Option<usize>>,
    /// Number of alias slots.
    naliases: usize,
    /// Compiled grouping keys.
    group_by: Vec<SlotExpr>,
    /// Compiled having filter.
    having: Option<SlotExpr>,
    /// Aggregates: function + compiled argument, in [`collect_aggs`] order
    /// (the dense index [`SlotExpr::Agg`] nodes refer to).
    aggs: Vec<(aiql_lang::AggFunc, SlotExpr)>,
    /// Event slots referenced anywhere in the projection.
    used_events: Vec<usize>,
    /// Variable slots referenced anywhere in the projection.
    used_vars: Vec<usize>,
}

/// Compiles a query's projection to slots. `None` when any expression
/// resists compilation (unknown name, historical access) — the caller then
/// keeps the dynamic [`RowCtx`] path, which reproduces legacy behavior
/// bit for bit, errors included.
fn compile_projection(store: &EventStore, a: &AnalyzedMultievent) -> Option<CompiledProjection> {
    let aggs_src = collect_aggs(a);
    let mut env = SlotEnv {
        vars: a
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.as_str(), i))
            .collect(),
        events: a
            .patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.as_str(), i))
            .collect(),
        aliases: HashMap::new(),
        aggs: aggs_src
            .iter()
            .enumerate()
            .map(|(i, (k, _, _))| (k.clone(), i))
            .collect(),
    };
    // Compile items in order; each alias becomes visible to later items,
    // the grouping keys, the having clause, and the aggregate arguments —
    // the same progressive scope the analyzer validated against.
    let mut items = Vec::with_capacity(a.ret.items.len());
    let mut alias_slot = Vec::with_capacity(a.ret.items.len());
    let mut naliases = 0usize;
    for item in &a.ret.items {
        items.push(eval::compile_slots(&item.expr, store, &env)?);
        alias_slot.push(item.alias.as_ref().map(|alias| {
            let slot = naliases;
            naliases += 1;
            env.aliases.insert(alias.as_str(), slot);
            slot
        }));
    }
    let group_by: Vec<SlotExpr> = a
        .group_by
        .iter()
        .map(|g| eval::compile_slots(g, store, &env))
        .collect::<Option<_>>()?;
    let having = match &a.having {
        Some(h) => Some(eval::compile_slots(h, store, &env)?),
        None => None,
    };
    let aggs: Vec<(aiql_lang::AggFunc, SlotExpr)> = aggs_src
        .iter()
        .map(|(_, func, arg)| Some((*func, eval::compile_slots(arg, store, &env)?)))
        .collect::<Option<_>>()?;

    let mut used_events: Vec<usize> = Vec::new();
    let mut used_vars: Vec<usize> = Vec::new();
    {
        let mut mark = |e: &SlotExpr| {
            e.visit(&mut |node| match node {
                SlotExpr::Event { slot, .. } if !used_events.contains(slot) => {
                    used_events.push(*slot);
                }
                SlotExpr::Entity { slot, .. } if !used_vars.contains(slot) => {
                    used_vars.push(*slot);
                }
                _ => {}
            });
        };
        for e in items.iter().chain(&group_by).chain(having.iter()) {
            mark(e);
        }
        for (_, arg) in &aggs {
            mark(arg);
        }
    }
    Some(CompiledProjection {
        items,
        alias_slot,
        naliases,
        group_by,
        having,
        aggs,
        used_events,
        used_vars,
    })
}

/// Populates a slot row from the ref arena, materializing only the event
/// slots the compiled projection reads.
fn fill_slots_arena(
    arena: &RefArena,
    parts: &PartTable<'_>,
    cp: &CompiledProjection,
    i: usize,
    row: &mut SlotRow,
) {
    for &v in &cp.used_vars {
        let id = arena.vars_of(i)[v];
        row.entities[v] = (id != NO_VAR).then_some(EntityId(id));
    }
    for &pi in &cp.used_events {
        let r = arena.events_of(i)[pi];
        row.events[pi] = (r != NO_REF).then(|| parts.event(r));
    }
}

/// Projection over slot rows: the same traversal as [`project_with`]
/// (grouping by first occurrence, per-item alias scope, having-after-items)
/// so the output is byte-identical — but every name lookup is an indexed
/// array access and the row context is filled without hashing.
fn project_compiled(
    store: &EventStore,
    a: &AnalyzedMultievent,
    cp: &CompiledProjection,
    ntuples: usize,
    gov: Option<&Governor>,
    mut fill: impl FnMut(usize, &mut SlotRow),
) -> Result<ResultTable, EngineError> {
    let columns: Vec<String> = a.ret.items.iter().map(column_name).collect();
    let mut table = ResultTable::new(columns);
    let aggregated = !cp.aggs.is_empty() || !a.group_by.is_empty();
    let mut ctx = SlotRow::new(a.vars.len(), a.patterns.len(), cp.naliases, cp.aggs.len());
    let mut gate = GovGate::new(gov);

    let mut rows: Vec<Vec<Value>> = Vec::new();
    if !aggregated {
        for i in 0..ntuples {
            // A trip here either unwinds (error mode) or keeps the rows
            // produced so far — a prefix of the full projection (partial
            // mode; the sticky trip surfaces as a warning on the table).
            if let (Some(t), Some(g)) = (gate.tick(), gov) {
                if !g.partial() {
                    return Err(g.error(t));
                }
                break;
            }
            fill(i, &mut ctx);
            let mut row = Vec::with_capacity(cp.items.len());
            for item in &cp.items {
                row.push(item.eval(store, &ctx)?);
            }
            if let Some(h) = &cp.having {
                // having without aggregation degenerates to a row filter.
                if !h.eval(store, &ctx)?.truthy() {
                    continue;
                }
            }
            rows.push(row);
        }
    } else if cp.group_by.is_empty() {
        // Single implicit group: skip the per-tuple group-key string and
        // hash lookup entirely — bare aggregate chains feed millions of
        // joined tuples through here and the key machinery would dominate
        // the accumulation itself.
        let mut accs: Vec<AggAcc> = cp.aggs.iter().map(|_| AggAcc::new()).collect();
        let mut consumed = 0usize;
        for ti in 0..ntuples {
            if let (Some(t), Some(g)) = (gate.tick(), gov) {
                if !g.partial() {
                    return Err(g.error(t));
                }
                break;
            }
            fill(ti, &mut ctx);
            for ((_, arg), acc) in cp.aggs.iter().zip(accs.iter_mut()) {
                acc.add(arg.eval(store, &ctx)?);
            }
            consumed += 1;
        }
        // Same emission as the grouped path with the first consumed tuple
        // as the representative; zero consumed tuples emit zero groups.
        if consumed > 0 {
            fill(0, &mut ctx);
            for (slot, ((func, _), acc)) in cp.aggs.iter().zip(accs.iter()).enumerate() {
                ctx.aggs[slot] = acc.finalize(*func);
            }
            ctx.aliases.iter_mut().for_each(|v| *v = None);
            let mut row = Vec::with_capacity(cp.items.len());
            for (item, alias) in cp.items.iter().zip(&cp.alias_slot) {
                let v = item.eval(store, &ctx)?;
                if let Some(slot) = alias {
                    ctx.aliases[*slot] = Some(v);
                }
                row.push(v);
            }
            if cp
                .having
                .as_ref()
                .map_or(Ok(true), |h| h.eval(store, &ctx).map(|v| v.truthy()))?
            {
                rows.push(row);
            }
        }
    } else {
        struct Group {
            rep: usize,
            accs: Vec<AggAcc>,
        }
        let mut groups: HashMap<String, Group> = HashMap::new();
        let mut group_order: Vec<String> = Vec::new();
        for ti in 0..ntuples {
            // Partial mode: aggregates reflect the tuple prefix consumed
            // before the trip (the table carries the warning).
            if let (Some(t), Some(g)) = (gate.tick(), gov) {
                if !g.partial() {
                    return Err(g.error(t));
                }
                break;
            }
            fill(ti, &mut ctx);
            let mut key_vals = Vec::with_capacity(cp.group_by.len());
            for g in &cp.group_by {
                key_vals.push(g.eval(store, &ctx)?);
            }
            let key = ResultTable::row_key(&key_vals);
            let group = match groups.get_mut(&key) {
                Some(g) => g,
                None => {
                    group_order.push(key.clone());
                    groups.entry(key).or_insert(Group {
                        rep: ti,
                        accs: cp.aggs.iter().map(|_| AggAcc::new()).collect(),
                    })
                }
            };
            for ((_, arg), acc) in cp.aggs.iter().zip(group.accs.iter_mut()) {
                acc.add(arg.eval(store, &ctx)?);
            }
        }
        for key in &group_order {
            let group = &groups[key];
            fill(group.rep, &mut ctx);
            for (slot, ((func, _), acc)) in cp.aggs.iter().zip(group.accs.iter()).enumerate() {
                ctx.aggs[slot] = acc.finalize(*func);
            }
            ctx.aliases.iter_mut().for_each(|v| *v = None);
            let mut row = Vec::with_capacity(cp.items.len());
            for (item, alias) in cp.items.iter().zip(&cp.alias_slot) {
                let v = item.eval(store, &ctx)?;
                if let Some(slot) = alias {
                    ctx.aliases[*slot] = Some(v);
                }
                row.push(v);
            }
            if let Some(h) = &cp.having {
                if !h.eval(store, &ctx)?.truthy() {
                    continue;
                }
            }
            rows.push(row);
        }
    }

    finish_rows(a, &mut rows)?;
    table.rows = rows;
    Ok(table)
}

/// Projects joined tuples into the final result table (aggregation,
/// having, distinct, order by, limit).
pub fn project(
    store: &EventStore,
    a: &AnalyzedMultievent,
    tuples: &[Tuple],
) -> Result<ResultTable, EngineError> {
    project_with(store, a, tuples.len(), None, |i, ctx| {
        fill_ctx_tuple(a, &tuples[i], ctx);
    })
}

/// Core projection over any tuple source: `fill(i, ctx)` populates the
/// (reused) row context for tuple `i`. The late-materialization path feeds
/// its ref arena through this, building each surviving tuple's events
/// exactly once and never allocating an intermediate tuple vector.
fn project_with<'a>(
    store: &EventStore,
    a: &'a AnalyzedMultievent,
    ntuples: usize,
    gov: Option<&Governor>,
    fill: impl Fn(usize, &mut RowCtx<'a>),
) -> Result<ResultTable, EngineError> {
    let columns: Vec<String> = a.ret.items.iter().map(column_name).collect();
    let mut table = ResultTable::new(columns);
    let aggs = collect_aggs(a);
    let aggregated = !aggs.is_empty() || !a.group_by.is_empty();
    let mut ctx = RowCtx::default();
    let mut gate = GovGate::new(gov);

    let mut rows: Vec<Vec<Value>> = Vec::new();
    if !aggregated {
        for i in 0..ntuples {
            if let (Some(t), Some(g)) = (gate.tick(), gov) {
                if !g.partial() {
                    return Err(g.error(t));
                }
                break;
            }
            fill(i, &mut ctx);
            let mut row = Vec::with_capacity(a.ret.items.len());
            for item in &a.ret.items {
                row.push(eval::eval(&item.expr, store, &ctx)?);
            }
            if let Some(h) = &a.having {
                // having without aggregation degenerates to a row filter.
                if !eval::eval(h, store, &ctx)?.truthy() {
                    continue;
                }
            }
            rows.push(row);
        }
    } else {
        // Group tuples.
        struct Group {
            rep: usize,
            accs: Vec<AggAcc>,
        }
        let mut groups: HashMap<String, Group> = HashMap::new();
        let mut group_order: Vec<String> = Vec::new();
        for ti in 0..ntuples {
            if let (Some(t), Some(g)) = (gate.tick(), gov) {
                if !g.partial() {
                    return Err(g.error(t));
                }
                break;
            }
            fill(ti, &mut ctx);
            let mut key_vals = Vec::with_capacity(a.group_by.len());
            for g in &a.group_by {
                key_vals.push(eval::eval(g, store, &ctx)?);
            }
            let key = ResultTable::row_key(&key_vals);
            let group = match groups.get_mut(&key) {
                Some(g) => g,
                None => {
                    group_order.push(key.clone());
                    groups.entry(key).or_insert(Group {
                        rep: ti,
                        accs: aggs.iter().map(|_| AggAcc::new()).collect(),
                    })
                }
            };
            for ((_, _, arg), acc) in aggs.iter().zip(group.accs.iter_mut()) {
                acc.add(eval::eval(arg, store, &ctx)?);
            }
        }
        for key in &group_order {
            let group = &groups[key];
            fill(group.rep, &mut ctx);
            for ((k, func, _), acc) in aggs.iter().zip(group.accs.iter()) {
                ctx.agg_values.insert(k.clone(), acc.finalize(*func));
            }
            // Alias environment (items may be referenced by alias in having).
            let mut row = Vec::with_capacity(a.ret.items.len());
            for item in &a.ret.items {
                let v = eval::eval(&item.expr, store, &ctx)?;
                if let Some(alias) = &item.alias {
                    ctx.aliases.insert(alias.clone(), v);
                }
                row.push(v);
            }
            if let Some(h) = &a.having {
                if !eval::eval(h, store, &ctx)?.truthy() {
                    continue;
                }
            }
            rows.push(row);
        }
    }

    finish_rows(a, &mut rows)?;
    table.rows = rows;
    Ok(table)
}

/// The projection tail shared by the dynamic and slot-compiled paths:
/// distinct, order by, limit.
fn finish_rows(a: &AnalyzedMultievent, rows: &mut Vec<Vec<Value>>) -> Result<(), EngineError> {
    if a.ret.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| seen.insert(ResultTable::row_key(r)));
    }

    if !a.order_by.is_empty() {
        // Each order key must correspond to an output column.
        let mut key_cols = Vec::with_capacity(a.order_by.len());
        for o in &a.order_by {
            let idx = a
                .ret
                .items
                .iter()
                .position(|item| {
                    item.expr == o.expr
                        || matches!(
                            (&o.expr, &item.alias),
                            (Expr::Ref { var, attr: None }, Some(alias)) if var == alias
                        )
                })
                .ok_or_else(|| {
                    EngineError::Analysis(
                        "order by must reference a returned column or alias".into(),
                    )
                })?;
            key_cols.push((idx, o.dir));
        }
        rows.sort_by(|x, y| {
            for (idx, dir) in &key_cols {
                let ord = eval::cmp_values(&x[*idx], &y[*idx]);
                let ord = match dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(limit) = a.limit {
        rows.truncate(limit as usize);
    }
    Ok(())
}
