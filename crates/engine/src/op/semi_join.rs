//! `SemiJoinNarrow`: per-pattern filter preparation.
//!
//! Before a pattern's scan runs, this operator narrows its base pushdown
//! filter with everything the already-executed patterns learned:
//!
//! * **semi-join pushdown** — entity-id sets bound by earlier patterns are
//!   AND-ed into the filter's subject/object posting-list lookups;
//! * **temporal narrowing** — observed time bounds of temporally related
//!   patterns shrink the scan window;
//! * without `entity_pushdown`, the dictionary id sets are stripped (the
//!   scan verifies attribute constraints per row instead), and a variable
//!   proven unsatisfiable short-circuits the whole pipeline.
//!
//! The narrowed filter is staged in [`PipelineState::narrowed`] for the
//! parent [`PatternScan`](crate::op::PatternScan).

use aiql_lang::TemporalOp;
use aiql_model::{TimeWindow, Timestamp};
use aiql_storage::EventFilter;

use crate::error::EngineError;
use crate::op::{ExecEnv, OpIo, Operator, PipelineState};

/// The filter-narrowing operator of one pattern.
#[derive(Debug, Clone, Copy)]
pub struct SemiJoinNarrow {
    pattern: usize,
}

impl SemiJoinNarrow {
    pub(crate) fn new(pattern: usize) -> Self {
        SemiJoinNarrow { pattern }
    }
}

impl Operator for SemiJoinNarrow {
    fn kind(&self) -> &'static str {
        "SemiJoinNarrow"
    }

    fn pattern(&self) -> Option<usize> {
        Some(self.pattern)
    }

    fn run(&self, env: &ExecEnv<'_>, st: &mut PipelineState) -> Result<OpIo, EngineError> {
        if st.done {
            return Ok(OpIo::default());
        }
        let a = env.a;
        let i = self.pattern;
        let p = &a.patterns[i];
        let mut filter = env.ctx.filters[i].clone();
        if !env.config.entity_pushdown {
            // Without the domain-specific pushdown the scan cannot use
            // entity posting lists; constraints are verified per row by the
            // scan (but unsatisfiable constraints still short-circuit).
            if a.vars[p.subject].unsatisfiable || a.vars[p.object].unsatisfiable {
                st.done = true;
                return Ok(OpIo::default());
            }
            filter.subjects = None;
            filter.objects = None;
        }
        let mut bound_in = 0;
        let mut pushed = 0;
        if env.config.semi_join_pushdown {
            for (var, is_subject) in [(p.subject, true), (p.object, false)] {
                if let Some(b) = st.bound.get(&var) {
                    bound_in += b.len();
                    let slot = if is_subject {
                        &mut filter.subjects
                    } else {
                        &mut filter.objects
                    };
                    match slot {
                        // In-place bitmap AND — no per-pattern set rebuild.
                        Some(existing) => existing.intersect_with(b),
                        None => *slot = Some(b.clone()),
                    }
                    pushed += slot.as_ref().map(aiql_storage::IdSet::len).unwrap_or(0);
                }
            }
        }
        if env.config.temporal_narrowing {
            narrow_window(env, &mut filter, i, &st.time_stats);
        }
        st.narrowed = Some(filter);
        Ok(OpIo {
            rows_in: bound_in,
            rows_out: pushed,
            fanout: 1,
            ..OpIo::default()
        })
    }
}

/// Narrows a pattern's scan window using the observed time bounds of
/// already-executed patterns it is temporally related to.
fn narrow_window(
    env: &ExecEnv<'_>,
    filter: &mut EventFilter,
    idx: usize,
    time_stats: &[Option<(i64, i64, i64, i64)>],
) {
    let mut lo = filter.window.start.micros();
    let mut hi = filter.window.end.micros();
    for t in &env.a.temporal {
        // `left before right`: left.end <= right.start.
        let (before_left, before_right) = match &t.op {
            TemporalOp::Before(b) => ((t.left, t.right), b),
            TemporalOp::After(b) => ((t.right, t.left), b),
        };
        let (l, r) = before_left;
        if r == idx {
            if let Some((_, _, min_end, max_end)) = time_stats[l] {
                lo = lo.max(min_end);
                if let Some(bound) = before_right {
                    hi = hi.min(max_end.saturating_add(bound.micros()).saturating_add(1));
                }
            }
        }
        if l == idx {
            if let Some((_, max_start, ..)) = time_stats[r] {
                // This pattern's events must end (hence start) no later
                // than the latest start of the other side.
                hi = hi.min(max_start.saturating_add(1));
            }
        }
    }
    if lo > filter.window.start.micros() || hi < filter.window.end.micros() {
        filter.window = TimeWindow::new(Timestamp(lo), Timestamp(hi.max(lo)));
    }
}
