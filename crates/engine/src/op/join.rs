//! `TemporalJoin`: the multi-way hash join over per-pattern candidate
//! batches, verifying shared-variable equality and temporal relationships.
//!
//! Patterns join smallest-candidate-list first. Each step indexes the
//! pattern's candidates by the entity ids of the variables the frontier
//! already binds (a pattern binds at most two variables, so the key packs
//! into one `u64`), probes the index for every frontier tuple, and appends
//! the surviving extensions.
//!
//! ## Parallel join
//!
//! With `EngineConfig::parallel_join`, a step whose frontier is large
//! enough is partitioned into contiguous tuple ranges (for the first
//! pattern — a single proto tuple — the candidate list itself is
//! partitioned, which follows storage-partition order) and the partitions
//! are driven concurrently on the shared scan executor. Each partition
//! appends into a private arena; partials merge back **in partition
//! order**, so the frontier is byte-identical to the serial traversal.
//!
//! For large candidate lists on steps with bound variables, the step's
//! hash index is itself built in parallel: candidates scatter into
//! key-hash shards on the executor, each shard's map is gathered in
//! candidate order, and probes hash to their shard ([`StepIndex`]) — the
//! index contents (and therefore the frontier) are byte-identical to the
//! serial build. `OpStat` splits the join's time into `build_nanos` vs
//! `probe_nanos` so the two parallelisms are separately visible.
//!
//! `max_intermediate` is enforced through a shared atomic budget: each
//! finished partition publishes its tuple count, and a running partition
//! stops once it has produced as many tuples as could still be kept given
//! the published counts of the partitions ordered before it (their final
//! counts only grow, so stopping is always sound). The merged frontier is
//! truncated to `max_intermediate`, which reproduces the serial
//! truncation prefix exactly.
//!
//! The materializing path (`late_materialization = false`, the seed's
//! pipeline) joins `Event` batches serially, kept for ablation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use aiql_lang::TemporalOp;
use aiql_model::{EntityId, Event};

use crate::analyze::AnalyzedMultievent;
use crate::error::EngineError;
use crate::governor::{GovGate, Governor, Trip};
use crate::op::{
    worker_panic, Batch, EventRef, ExecEnv, Frontier, OpIo, Operator, PartTable, PipelineState,
    RefArena, Tuple, NO_REF, NO_VAR,
};

/// Minimum per-step probe work (frontier tuples, or candidates for the
/// first pattern) before the join fans out in auto mode. Below this the
/// fork/merge overhead outweighs the step.
const PARALLEL_JOIN_MIN_WORK: usize = 1024;

/// Minimum candidate-list size before a join step's hash-index *build*
/// fans out into key-hash shards in auto mode. Below this the two-phase
/// scatter/gather costs more than the serial insert loop.
const PARALLEL_INDEX_MIN_BUILD: usize = 4096;

/// How many appended tuples a join partition produces between refreshes of
/// its shared-budget cap. Bounds how far a partition can overshoot the
/// budget before it notices earlier partitions have already filled it.
const BUDGET_REFRESH: usize = 4096;

/// The multi-way join operator.
#[derive(Debug, Clone, Copy, Default)]
pub struct TemporalJoin;

impl TemporalJoin {
    pub(crate) fn new() -> Self {
        TemporalJoin
    }
}

impl Operator for TemporalJoin {
    fn kind(&self) -> &'static str {
        "TemporalJoin"
    }

    fn run(&self, env: &ExecEnv<'_>, st: &mut PipelineState) -> Result<OpIo, EngineError> {
        if st.done {
            // A pattern came back empty: the frontier stays empty, and the
            // projection above produces the empty table.
            st.stats.tuples = 0;
            return Ok(OpIo::default());
        }
        let candidates = std::mem::take(&mut st.candidates);
        let rows_in: usize = candidates
            .iter()
            .map(|c| c.as_ref().map(Batch::len).unwrap_or(0))
            .sum();
        let late = matches!(candidates.first(), Some(Some(Batch::Refs(_))));
        let cand_bytes = rows_in as u64
            * if late {
                std::mem::size_of::<EventRef>() as u64
            } else {
                std::mem::size_of::<Event>() as u64
            };
        let (frontier, run) = if late {
            let lists: Vec<Vec<EventRef>> = candidates
                .into_iter()
                .map(|c| match c {
                    Some(Batch::Refs(v)) => v,
                    _ => unreachable!("late path fetched refs for every pattern"),
                })
                .collect();
            let (arena, run) = join_refs(env, lists)?;
            (Frontier::Refs(arena), run)
        } else {
            let lists: Vec<Vec<Event>> = candidates
                .into_iter()
                .map(|c| match c {
                    Some(Batch::Events(v)) => v,
                    _ => unreachable!("materializing path fetched events for every pattern"),
                })
                .collect();
            let (tuples, run) = join_events(env, lists)?;
            (Frontier::Events(tuples), run)
        };
        // The candidate batches the scans charged are consumed now; only
        // the frontier (charged per step inside the join) remains live.
        if let Some(g) = env.gov() {
            g.uncharge(cand_bytes);
        }
        st.truncated = run.truncated;
        st.stats.tuples = frontier.len();
        let rows_out = frontier.len();
        st.frontier = frontier;
        Ok(OpIo {
            rows_in,
            rows_out,
            fanout: run.fanout,
            build_nanos: run.build_nanos,
            probe_nanos: run.probe_nanos,
        })
    }
}

/// Aggregate accounting of one join execution: truncation, widest
/// partition/shard fan-out, and the per-phase timing split (index builds
/// vs frontier probes, summed over join steps).
#[derive(Debug, Clone, Copy, Default)]
struct JoinRun {
    truncated: bool,
    fanout: usize,
    build_nanos: u64,
    probe_nanos: u64,
}

/// Join-step partition count for `work` probe items, or `None` for serial.
pub(crate) fn join_partitions(env: &ExecEnv<'_>, work: usize) -> Option<usize> {
    if !env.config.parallel_join || env.pool.is_none() {
        return None;
    }
    if env.config.join_partitions > 0 {
        // Explicit partition count: force the parallel path (tests and
        // ablations exercise tiny frontiers through it).
        (work >= 2).then_some(env.config.join_partitions.min(work))
    } else {
        let threads = env.config.parallelism.max(1);
        (threads > 1 && work >= PARALLEL_JOIN_MIN_WORK).then(|| (threads * 4).min(work))
    }
}

/// Packs the at-most-two bound entity ids of a pattern into one `u64`
/// (`NO_VAR` pads the unused half).
#[inline]
fn pack(ids: [u32; 2]) -> u64 {
    (u64::from(ids[0]) << 32) | u64::from(ids[1])
}

/// SplitMix64 finalizer: spreads packed entity-id keys across shards (the
/// raw keys are dense small integers — `key % shards` would pile them up).
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// The shard owning `key` in an `n`-shard index.
#[inline]
fn shard_of(key: u64, n: usize) -> usize {
    (mix(key) % n as u64) as usize
}

/// One scatter chunk's output: a (key, ref) bucket per shard.
type ShardBuckets = Vec<Vec<(u64, EventRef)>>;

/// One join step's candidate hash index: a single map (serial build) or
/// key-hash shards built in parallel on the scan executor. Probes hash the
/// key to its shard, so sharded and single indexes answer identically; the
/// build preserves candidate order within every key's ref list (scatter
/// chunks are contiguous candidate ranges gathered in chunk order), so the
/// probe traversal — and therefore the joined frontier — is byte-identical
/// to the serial build.
enum StepIndex {
    Single(HashMap<u64, Vec<EventRef>>),
    Sharded(Vec<HashMap<u64, Vec<EventRef>>>),
}

impl StepIndex {
    #[inline]
    fn get(&self, key: u64) -> Option<&Vec<EventRef>> {
        match self {
            StepIndex::Single(m) => m.get(&key),
            StepIndex::Sharded(shards) => shards[shard_of(key, shards.len())].get(&key),
        }
    }

    /// Build fan-out used (1 = serial).
    fn shards(&self) -> usize {
        match self {
            StepIndex::Single(_) => 1,
            StepIndex::Sharded(s) => s.len(),
        }
    }
}

/// Shard count for building a step's index over `candidates` refs, or
/// `None` for the serial build. Sharding only pays when the step has bound
/// variables (`bound`): the first step's single proto bucket puts every
/// candidate under one key, where sharding is pure overhead.
fn index_shards(env: &ExecEnv<'_>, candidates: usize, bound: bool) -> Option<usize> {
    if !bound || !env.config.parallel_join || env.pool.is_none() {
        return None;
    }
    if env.config.join_partitions > 0 {
        // Explicit partition count: force the sharded build (tests and
        // ablations exercise tiny candidate lists through it).
        (candidates >= 2).then_some(env.config.join_partitions.min(candidates))
    } else {
        let threads = env.config.parallelism.max(1);
        (threads > 1 && candidates >= PARALLEL_INDEX_MIN_BUILD)
            .then(|| (threads * 2).min(candidates))
    }
}

/// Builds a step's candidate index, fanning the build out into key-hash
/// shards when [`index_shards`] says it pays. The parallel build runs in
/// two phases on the scan executor: *scatter* — contiguous candidate
/// chunks bucket their (key, ref) pairs by shard — then *gather* — each
/// shard inserts its buckets in chunk order. Both phases preserve
/// candidate order per key.
fn build_index(
    env: &ExecEnv<'_>,
    refs: &[EventRef],
    same_var: bool,
    key_of: &(dyn Fn(EventRef) -> u64 + Sync),
    bound: bool,
) -> Result<StepIndex, EngineError> {
    let parts = &env.parts;
    let nshards = index_shards(env, refs.len(), bound).filter(|&s| s > 1);
    let Some(nshards) = nshards else {
        let mut index: HashMap<u64, Vec<EventRef>> = HashMap::new();
        for &r in refs {
            if same_var && parts.subject(r) != parts.object(r) {
                continue;
            }
            index.entry(key_of(r)).or_default().push(r);
        }
        return Ok(StepIndex::Single(index));
    };
    let Some(pool) = env.pool.as_ref() else {
        return Err(crate::op::internal(
            "sharded index build scheduled without a scan executor",
        ));
    };
    let workers = env.config.parallelism.max(1);
    let chunk = refs.len().div_ceil(nshards);
    // Scatter: chunk c buckets its candidate range by shard.
    let scattered: Vec<Mutex<ShardBuckets>> =
        (0..nshards).map(|_| Mutex::new(Vec::new())).collect();
    pool.run_chunks_capped(nshards, workers, &|c| {
        let lo = (c * chunk).min(refs.len());
        let hi = (lo + chunk).min(refs.len());
        let mut buckets: ShardBuckets = (0..nshards).map(|_| Vec::new()).collect();
        for &r in &refs[lo..hi] {
            if same_var && parts.subject(r) != parts.object(r) {
                continue;
            }
            let key = key_of(r);
            buckets[shard_of(key, nshards)].push((key, r));
        }
        *crate::op::lock_clean(&scattered[c]) = buckets;
    })
    .map_err(worker_panic)?;
    let scattered: Vec<ShardBuckets> = scattered.into_iter().map(crate::op::unwrap_clean).collect();
    // Gather: shard s drains every chunk's bucket s, in chunk order.
    let shards: Vec<Mutex<HashMap<u64, Vec<EventRef>>>> =
        (0..nshards).map(|_| Mutex::new(HashMap::new())).collect();
    pool.run_chunks_capped(nshards, workers, &|s| {
        let mut map: HashMap<u64, Vec<EventRef>> = HashMap::new();
        for chunk_buckets in &scattered {
            for &(key, r) in &chunk_buckets[s] {
                map.entry(key).or_default().push(r);
            }
        }
        *crate::op::lock_clean(&shards[s]) = map;
    })
    .map_err(worker_panic)?;
    Ok(StepIndex::Sharded(
        shards.into_iter().map(crate::op::unwrap_clean).collect(),
    ))
}

/// Shared truncation budget of one parallel join step. `produced[k]` is a
/// monotone running count of partition `k`'s appended tuples (published
/// every [`BUDGET_REFRESH`] appends and at completion), so any partition
/// can compute a lower bound on the tuples committed before it in merge
/// order — a running count can only grow toward its final value, so the
/// bound stays sound. Publishing progress (not just completion) keeps the
/// peak intermediate memory of a truncating step near `max` plus a
/// refresh-interval of slack per partition, instead of `max` *per
/// partition*.
struct JoinBudget {
    max: usize,
    produced: Vec<AtomicUsize>,
}

impl JoinBudget {
    fn new(max: usize, partitions: usize) -> Self {
        JoinBudget {
            max,
            produced: (0..partitions).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Upper bound on how many tuples partition `k` could still contribute
    /// to the merged frontier. Earlier partitions' published counts only
    /// push this down, never up, so acting on a stale value is sound.
    fn cap(&self, k: usize) -> usize {
        let committed_before: usize = self.produced[..k]
            .iter()
            .map(|d| d.load(Ordering::Acquire))
            .sum();
        self.max.saturating_sub(committed_before)
    }

    /// Publishes partition `k`'s running (monotone) tuple count.
    fn publish(&self, k: usize, produced: usize) {
        self.produced[k].store(produced, Ordering::Release);
    }
}

/// Append-budget tracker of one join drive: stops the drive at `cap`
/// appended tuples, periodically tightening the cap from the shared
/// budget (parallel partitions only — the serial drive's cap is fixed at
/// `max_intermediate`).
struct CapTracker<'b> {
    cap: usize,
    shared: Option<(&'b JoinBudget, usize)>,
    /// Governor polled at each refresh (dense append runs — the single
    /// proto bucket — reach it through `exhausted` even without per-tuple
    /// gate ticks).
    gov: Option<&'b Governor>,
    /// Set when a governor trip (not budget exhaustion) stopped the drive.
    gov_stop: bool,
    next_refresh: usize,
}

impl<'b> CapTracker<'b> {
    fn fixed(cap: usize, gov: Option<&'b Governor>) -> Self {
        CapTracker {
            cap,
            shared: None,
            gov,
            gov_stop: false,
            next_refresh: if gov.is_some() {
                BUDGET_REFRESH
            } else {
                usize::MAX
            },
        }
    }

    fn shared(budget: &'b JoinBudget, k: usize, gov: Option<&'b Governor>) -> Self {
        CapTracker {
            cap: budget.cap(k),
            shared: Some((budget, k)),
            gov,
            gov_stop: false,
            next_refresh: BUDGET_REFRESH,
        }
    }

    /// Called after each append with the drive's output length; `true`
    /// means stop (the budget is exhausted, or the governor tripped — see
    /// `gov_stop`). The cap only ever shrinks, so stopping is final. On
    /// each refresh the drive's own progress is published, tightening the
    /// caps of later partitions while this one is still running.
    #[inline]
    fn exhausted(&mut self, len: usize) -> bool {
        if len >= self.next_refresh {
            if let Some((budget, k)) = self.shared {
                budget.publish(k, len);
                self.cap = self.cap.min(budget.cap(k));
            }
            if self.gov.is_some_and(|g| g.check().is_err()) {
                self.gov_stop = true;
                return true;
            }
            self.next_refresh = len + BUDGET_REFRESH;
        }
        len >= self.cap
    }
}

/// One join-step drive's output: the extended frontier, whether the row
/// cap truncated it, and whether it ran to completion (`complete = false`
/// means a governor trip stopped the drive early; the output is a prefix
/// of the untripped step output).
struct StepOut {
    arena: RefArena,
    truncated: bool,
    complete: bool,
}

/// Multi-way hash join over per-pattern *reference* lists: the tuple
/// frontier lives in a flat [`RefArena`] (no per-tuple allocation). Returns
/// the final frontier plus the run accounting (truncation, widest fan-out,
/// build/probe timing split).
///
/// Governor integration: the memory budget converts to a deterministic row
/// cap at each step start (`remaining_bytes / tuple_bytes`, min'd into
/// `max_intermediate`), so serial and parallel execution truncate at the
/// same tuple. Deadline/cancel trips stop the running drive at its next
/// poll; in partial mode the remaining steps then run ungoverned so the
/// preserved prefix completes (a prefix of any step's input extends to a
/// prefix of the final frontier), in error mode the trip unwinds here.
fn join_refs(
    env: &ExecEnv<'_>,
    candidates: Vec<Vec<EventRef>>,
) -> Result<(RefArena, JoinRun), EngineError> {
    let a = env.a;
    let parts = &env.parts;
    let n = a.patterns.len();
    let nvars = a.vars.len();
    let tuple_bytes =
        (n * std::mem::size_of::<EventRef>() + nvars * std::mem::size_of::<u32>()) as u64;
    // Cleared after a partial-mode trip: the remaining steps complete the
    // preserved prefix without further governance.
    let mut gov = env.gov();
    // Join order: smallest candidate list first.
    let mut join_order: Vec<usize> = (0..n).collect();
    join_order.sort_by_key(|&i| (candidates[i].len(), i));

    let mut tuples = RefArena::new(n, nvars);
    tuples.events.resize(n, NO_REF);
    tuples.vars.resize(nvars, NO_VAR);
    let mut run = JoinRun {
        fanout: 1,
        ..JoinRun::default()
    };

    for &i in &join_order {
        let p = &a.patterns[i];
        let refs = &candidates[i];
        let same_var = p.subject == p.object;
        // A pattern binds at most two variables, so the bound-var key
        // packs into one u64.
        let pattern_vars: [usize; 2] = [p.subject, p.object];
        let proto_vars = tuples.vars_of(0);
        let bound_vars: Vec<usize> = pattern_vars
            .iter()
            .take(if same_var { 1 } else { 2 })
            .copied()
            .filter(|&v| proto_vars[v] != NO_VAR)
            .collect();
        let key_of_ref = |r: EventRef| {
            let mut ids = [NO_VAR; 2];
            for (slot, &v) in ids.iter_mut().zip(&bound_vars) {
                *slot = if v == p.subject {
                    parts.subject(r).raw()
                } else {
                    parts.object(r).raw()
                };
            }
            pack(ids)
        };
        let t_build = Instant::now();
        let index = build_index(env, refs, same_var, &key_of_ref, !bound_vars.is_empty())?;
        run.build_nanos += t_build.elapsed().as_nanos() as u64;
        run.fanout = run.fanout.max(index.shards());

        // Effective row cap of this step: `max_intermediate`, tightened by
        // the memory budget converted to rows. Reading `remaining_bytes`
        // happens on the query thread between steps, so the cap — and
        // therefore the truncation point — is identical for the serial and
        // parallel drives.
        let mut cap = env.config.max_intermediate;
        let mut mem_capped = false;
        if let Some(g) = gov {
            if g.has_memory_budget() {
                let rows = (g.remaining_bytes() / tuple_bytes) as usize;
                if rows < cap {
                    cap = rows;
                    mem_capped = true;
                }
            }
        }

        let step = JoinStep {
            env,
            parts,
            a,
            index: &index,
            bound_vars: &bound_vars,
            pattern: i,
            subject: p.subject,
            object: p.object,
        };
        // Probe work of this step: frontier tuples — except at the very
        // first step, whose single proto tuple probes one bucket holding
        // every candidate (partitioning that bucket follows storage
        // partition order, since candidates are collected that way).
        let single_proto = tuples.len() == 1 && bound_vars.is_empty();
        let work = if single_proto {
            step.index.get(pack([NO_VAR; 2])).map(Vec::len).unwrap_or(0)
        } else {
            tuples.len()
        };
        let t_probe = Instant::now();
        let out = if cap == 0 {
            // The budget is already spent: drives would overshoot a zero
            // cap by one in the serial case, so short-circuit to the empty
            // (still valid) prefix on both drives.
            StepOut {
                arena: RefArena::new(n, nvars),
                truncated: true,
                complete: true,
            }
        } else {
            match join_partitions(env, work) {
                Some(nparts) => {
                    run.fanout = run.fanout.max(nparts);
                    step.parallel(&tuples, nparts, single_proto, cap, gov)?
                }
                None => step.serial(&tuples, cap, gov),
            }
        };
        run.probe_nanos += t_probe.elapsed().as_nanos() as u64;
        let prev_bytes = tuples.len() as u64 * tuple_bytes;
        let step_truncated = out.truncated;
        let step_complete = out.complete;
        tuples = out.arena;
        if let Some(g) = gov {
            // A drive only stops early after observing (and recording) a
            // trip, so the sticky trip below is the single source of truth.
            debug_assert!(step_complete || g.trip().is_some());
            // Swap the frontier's accounted bytes: the old frontier is
            // dropped, the new one is live.
            g.uncharge(prev_bytes);
            let _ = g.charge(tuples.len() as u64 * tuple_bytes);
            if mem_capped && step_truncated {
                // Hitting the memory-derived cap is a Memory trip, not the
                // `TooManyMatches` truncation.
                g.record(Trip::Memory);
            }
            if let Some(t) = g.trip() {
                if !g.partial() {
                    return Err(g.error(t));
                }
                gov = None;
            } else {
                run.truncated |= step_truncated;
            }
        } else {
            run.truncated |= step_truncated;
        }
        if tuples.len() == 0 {
            return Ok((tuples, run));
        }
    }
    Ok((tuples, run))
}

/// One ref-join step: everything shared by its serial and parallel drives.
struct JoinStep<'s, 'a> {
    env: &'s ExecEnv<'a>,
    parts: &'s PartTable<'a>,
    a: &'s AnalyzedMultievent,
    index: &'s StepIndex,
    bound_vars: &'s [usize],
    pattern: usize,
    subject: usize,
    object: usize,
}

impl JoinStep<'_, '_> {
    /// Probes the index for tuple `t` (restricted to the match-slice range
    /// `[mlo, mhi)` when partitioning a single proto tuple; pass the full
    /// range otherwise) and appends surviving extensions to `out`. Returns
    /// `true` when the tracker's budget was exhausted — the caller must
    /// stop its drive.
    #[inline]
    fn probe_into(
        &self,
        tuples: &RefArena,
        t: usize,
        range: Option<(usize, usize)>,
        out: &mut RefArena,
        caps: &mut CapTracker<'_>,
    ) -> bool {
        let tvars = tuples.vars_of(t);
        let mut ids = [NO_VAR; 2];
        for (slot, &v) in ids.iter_mut().zip(self.bound_vars) {
            *slot = tvars[v];
        }
        let Some(matches) = self.index.get(pack(ids)) else {
            return false;
        };
        let (mlo, mhi) = range.unwrap_or((0, matches.len()));
        for &r in &matches[mlo..mhi] {
            if !temporal_ok_refs(self.a, self.parts, self.pattern, r, tuples, t) {
                continue;
            }
            let ti = out.push_from(tuples, t);
            out.set_event(ti, self.pattern, r);
            out.set_var(ti, self.subject, self.parts.subject(r));
            out.set_var(ti, self.object, self.parts.object(r));
            if caps.exhausted(out.len()) {
                return true;
            }
        }
        false
    }

    /// The serial drive: identical traversal to the pre-operator fused
    /// loop. `cap` is the step's effective row cap; `gov` is polled every
    /// [`crate::governor::GOV_CHECK_INTERVAL`] tuples (and inside dense
    /// append runs via the tracker).
    fn serial(&self, tuples: &RefArena, cap: usize, gov: Option<&Governor>) -> StepOut {
        let mut caps = CapTracker::fixed(cap, gov);
        let mut next = RefArena::new(tuples.npatterns, tuples.nvars);
        let mut truncated = false;
        let mut gate = GovGate::new(gov);
        for t in 0..tuples.len() {
            if gate.tick().is_some() {
                caps.gov_stop = true;
                break;
            }
            if self.probe_into(tuples, t, None, &mut next, &mut caps) {
                truncated = !caps.gov_stop;
                break;
            }
        }
        StepOut {
            complete: !caps.gov_stop,
            arena: next,
            truncated,
        }
    }

    /// The parallel drive: contiguous probe-range partitions on the scan
    /// executor, merged in partition order. A governor trip is observed by
    /// every partition (the trip is sticky and shared), each stops at its
    /// next poll, and the merge keeps complete partials in partition order
    /// up to the first incomplete one plus that partition's prefix — a
    /// prefix of the serial traversal.
    fn parallel(
        &self,
        tuples: &RefArena,
        nparts: usize,
        single_proto: bool,
        cap: usize,
        gov: Option<&Governor>,
    ) -> Result<StepOut, EngineError> {
        let env = self.env;
        let Some(pool) = env.pool.as_ref() else {
            return Err(crate::op::internal(
                "parallel join scheduled without a scan executor",
            ));
        };
        let work = if single_proto {
            self.index.get(pack([NO_VAR; 2])).map(Vec::len).unwrap_or(0)
        } else {
            tuples.len()
        };
        let nparts = nparts.min(work).max(1);
        let per = work.div_ceil(nparts);
        let budget = JoinBudget::new(cap, nparts);
        let partials: Vec<std::sync::Mutex<(RefArena, bool)>> = (0..nparts)
            .map(|_| std::sync::Mutex::new((RefArena::default(), true)))
            .collect();

        pool.run_chunks_capped(nparts, env.config.parallelism.max(1), &|k| {
            // Rounding up `per` can leave trailing partitions empty; clamp
            // both bounds so their ranges are empty instead of invalid.
            let lo = (k * per).min(work);
            let hi = (lo + per).min(work);
            let mut out = RefArena::new(tuples.npatterns, tuples.nvars);
            let mut caps = CapTracker::shared(&budget, k, gov);
            if single_proto {
                // Partitioning the first pattern: the proto tuple's single
                // bucket, sliced to the candidate range [lo, hi).
                self.probe_into(tuples, 0, Some((lo, hi)), &mut out, &mut caps);
            } else {
                let mut gate = GovGate::new(gov);
                for t in lo..hi {
                    if gate.tick().is_some() {
                        caps.gov_stop = true;
                        break;
                    }
                    if self.probe_into(tuples, t, None, &mut out, &mut caps) {
                        break;
                    }
                }
            }
            budget.publish(k, out.len());
            *crate::op::lock_clean(&partials[k]) = (out, !caps.gov_stop);
        })
        .map_err(worker_panic)?;

        let partials: Vec<(RefArena, bool)> =
            partials.into_iter().map(crate::op::unwrap_clean).collect();
        let total: usize = partials.iter().map(|(a, _)| a.len()).sum();
        let keep = total.min(cap);
        let mut merged = RefArena::new(tuples.npatterns, tuples.nvars);
        merged.events.reserve_exact(keep * tuples.npatterns);
        merged.vars.reserve_exact(keep * tuples.nvars);
        let mut complete = true;
        for (part, part_complete) in &partials {
            let room = keep - merged.len();
            merged.append_prefix(part, room);
            if !part_complete {
                // Later partitions' tuples would follow tuples this
                // partition never produced; dropping them keeps the merge
                // a prefix of the serial traversal.
                complete = false;
                break;
            }
        }
        // The serial loop flags truncation as soon as the frontier reaches
        // the cap. Early-stopped partitions only stop once the counts
        // published before them plus their own output reach the cap, so
        // `total` hits it exactly when the serial loop would have flagged —
        // and the merged prefix is the serial prefix.
        Ok(StepOut {
            truncated: complete && total >= cap,
            complete,
            arena: merged,
        })
    }
}

/// Temporal verification of the ref join, reading only the time columns.
fn temporal_ok_refs(
    a: &AnalyzedMultievent,
    parts: &PartTable<'_>,
    i: usize,
    r: EventRef,
    tuples: &RefArena,
    t: usize,
) -> bool {
    let events = tuples.events_of(t);
    for rel in &a.temporal {
        let (l, rt, bound) = match &rel.op {
            TemporalOp::Before(b) => (rel.left, rel.right, b),
            // (after is before with sides swapped)
            TemporalOp::After(b) => (rel.right, rel.left, b),
        };
        let (left_end, right_start) = if l == i && events[rt] != NO_REF {
            (parts.end(r), parts.start(events[rt]))
        } else if rt == i && events[l] != NO_REF {
            (parts.end(events[l]), parts.start(r))
        } else {
            continue;
        };
        if left_end > right_start {
            return false;
        }
        if let Some(b) = bound {
            if (right_start - left_end) > *b {
                return false;
            }
        }
    }
    true
}

/// The seed's materializing join (kept intact for the ablation benches):
/// candidates are full events and the frontier clones them per tuple. The
/// governor integrates the same way as [`join_refs`] — deterministic row
/// caps from the memory budget, per-tuple deadline/cancel polls, partial
/// mode completing the preserved prefix ungoverned.
fn join_events(
    env: &ExecEnv<'_>,
    candidates: Vec<Vec<Event>>,
) -> Result<(Vec<Tuple>, JoinRun), EngineError> {
    let a = env.a;
    let n = a.patterns.len();
    let nvars = a.vars.len();
    // Frontier footprint estimate per tuple: the inline options (each
    // tuple also owns two Vec headers, which this deliberately ignores —
    // the accounting tracks the dominant payload).
    let tuple_bytes = (n * std::mem::size_of::<Option<Event>>()
        + nvars * std::mem::size_of::<Option<EntityId>>()) as u64;
    let mut gov = env.gov();
    // Join order: smallest candidate list first.
    let mut join_order: Vec<usize> = (0..n).collect();
    join_order.sort_by_key(|&i| (candidates[i].len(), i));

    let mut tuples: Vec<Tuple> = vec![Tuple {
        events: vec![None; n],
        vars: vec![None; nvars],
    }];
    let mut run = JoinRun {
        fanout: 1,
        ..JoinRun::default()
    };

    for &i in &join_order {
        let p = &a.patterns[i];
        let events = &candidates[i];
        // Vars of this pattern, deduped (subject may equal object).
        let pattern_vars: Vec<usize> = if p.subject == p.object {
            vec![p.subject]
        } else {
            vec![p.subject, p.object]
        };
        let mut next: Vec<Tuple> = Vec::new();
        // Index events by the entity ids of vars that are already bound
        // in at least one tuple. For simplicity (and since tuples at a
        // given step share the same bound-var set), use the first tuple
        // as the prototype.
        let proto_bound: Vec<usize> = pattern_vars
            .iter()
            .copied()
            .filter(|&v| tuples.first().map(|t| t.vars[v].is_some()).unwrap_or(false))
            .collect();
        let t_build = Instant::now();
        let mut index: HashMap<Vec<EntityId>, Vec<&Event>> = HashMap::new();
        for e in events {
            if p.subject == p.object && e.subject != e.object {
                continue;
            }
            let key: Vec<EntityId> = proto_bound
                .iter()
                .map(|&v| if v == p.subject { e.subject } else { e.object })
                .collect();
            index.entry(key).or_default().push(e);
        }
        run.build_nanos += t_build.elapsed().as_nanos() as u64;
        // Effective row cap (see `join_refs`).
        let mut cap = env.config.max_intermediate;
        let mut mem_capped = false;
        if let Some(g) = gov {
            if g.has_memory_budget() {
                let rows = (g.remaining_bytes() / tuple_bytes) as usize;
                if rows < cap {
                    cap = rows;
                    mem_capped = true;
                }
            }
        }
        let mut step_truncated = false;
        let mut gate = GovGate::new(gov);
        let t_probe = Instant::now();
        if cap == 0 {
            step_truncated = true;
        } else {
            'tuples: for t in &tuples {
                if gate.tick().is_some() {
                    break 'tuples;
                }
                let mut key: Vec<EntityId> = Vec::with_capacity(proto_bound.len());
                for &v in proto_bound.iter() {
                    match t.vars[v] {
                        Some(id) => key.push(id),
                        None => {
                            return Err(crate::op::internal(
                                "prototype variable unbound during join probe",
                            ))
                        }
                    }
                }
                let Some(matches) = index.get(&key) else {
                    continue;
                };
                for e in matches {
                    if !temporal_ok(a, i, e, t) {
                        continue;
                    }
                    let mut nt = t.clone();
                    nt.events[i] = Some(**e);
                    nt.vars[p.subject] = Some(e.subject);
                    nt.vars[p.object] = Some(e.object);
                    next.push(nt);
                    if next.len() >= cap {
                        step_truncated = true;
                        break 'tuples;
                    }
                }
            }
        }
        run.probe_nanos += t_probe.elapsed().as_nanos() as u64;
        let prev_bytes = tuples.len() as u64 * tuple_bytes;
        tuples = next;
        if let Some(g) = gov {
            g.uncharge(prev_bytes);
            let _ = g.charge(tuples.len() as u64 * tuple_bytes);
            if mem_capped && step_truncated {
                g.record(Trip::Memory);
            }
            if let Some(t) = g.trip() {
                if !g.partial() {
                    return Err(g.error(t));
                }
                gov = None;
            } else {
                run.truncated |= step_truncated;
            }
        } else {
            run.truncated |= step_truncated;
        }
        if tuples.is_empty() {
            return Ok((tuples, run));
        }
    }
    Ok((tuples, run))
}

/// Verifies every temporal relationship between pattern `i`'s candidate
/// event and the events already placed in the tuple.
fn temporal_ok(a: &AnalyzedMultievent, i: usize, e: &Event, t: &Tuple) -> bool {
    for rel in &a.temporal {
        let (l, r, bound) = match &rel.op {
            TemporalOp::Before(b) => (rel.left, rel.right, b),
            // (after is before with sides swapped)
            TemporalOp::After(b) => (rel.right, rel.left, b),
        };
        let (left_event, right_event) = if l == i {
            let Some(right) = t.events[r] else { continue };
            (*e, right)
        } else if r == i {
            let Some(left) = t.events[l] else { continue };
            (left, *e)
        } else {
            continue;
        };
        if left_event.end_time > right_event.start_time {
            return false;
        }
        if let Some(b) = bound {
            if (right_event.start_time - left_event.end_time) > *b {
                return false;
            }
        }
    }
    true
}
