//! `TemporalJoin`: the multi-way hash join over per-pattern candidate
//! batches, verifying shared-variable equality and temporal relationships.
//!
//! Patterns join smallest-candidate-list first. Each step indexes the
//! pattern's candidates by the entity ids of the variables the frontier
//! already binds (a pattern binds at most two variables, so the key packs
//! into one `u64`), probes the index for every frontier tuple, and appends
//! the surviving extensions.
//!
//! ## Parallel join
//!
//! With `EngineConfig::parallel_join`, a step whose frontier is large
//! enough is partitioned into contiguous tuple ranges (for the first
//! pattern — a single proto tuple — the candidate list itself is
//! partitioned, which follows storage-partition order) and the partitions
//! are driven concurrently on the shared scan executor. Each partition
//! appends into a private arena; partials merge back **in partition
//! order**, so the frontier is byte-identical to the serial traversal.
//!
//! For large candidate lists on steps with bound variables, the step's
//! hash index is itself built in parallel: candidates scatter into
//! key-hash shards on the executor, each shard's map is gathered in
//! candidate order, and probes hash to their shard ([`StepIndex`]) — the
//! index contents (and therefore the frontier) are byte-identical to the
//! serial build. `OpStat` splits the join's time into `build_nanos` vs
//! `probe_nanos` so the two parallelisms are separately visible.
//!
//! `max_intermediate` is enforced through a shared atomic budget: each
//! finished partition publishes its tuple count, and a running partition
//! stops once it has produced as many tuples as could still be kept given
//! the published counts of the partitions ordered before it (their final
//! counts only grow, so stopping is always sound). The merged frontier is
//! truncated to `max_intermediate`, which reproduces the serial
//! truncation prefix exactly.
//!
//! ## Probe reduction layers
//!
//! Three composable layers cut probe work without changing results (every
//! layer preserves the byte-identical-frontier invariant):
//!
//! 1. **Time-bucketed indexes** (`EngineConfig::time_bucket_join`): steps
//!    with temporal relations to already-placed patterns build a
//!    [`StepIndex::Timed`] — posting lists carry dense start/end time
//!    columns plus per-chunk start-bucket zone maps over a [`BucketGrid`]
//!    sized from the candidate time range. The probe hoists each tuple's
//!    admissible start/end intervals out of the per-match loop (computed
//!    once from the placed events), skips whole chunks whose bucket zone
//!    cannot intersect, and verifies survivors against the dense time
//!    columns — no per-match partition `locate` or time-column re-read.
//! 2. **Key-partitioned probe** (`EngineConfig::partitioned_probe`): when
//!    the index is sharded, the parallel drive re-partitions by join key —
//!    shard `k` keeps only frontier tuples hashing to `k` and probes its
//!    local index shard. Appends are recorded as per-tuple runs and merged
//!    in ascending frontier order, which is exactly the serial traversal.
//! 3. **Sideways filter pushdown** (`EngineConfig::sideways_filters`):
//!    scans publish bitmap domains of their candidates' subject/object
//!    ids; the join prunes each step's build with the placed partners'
//!    domains, pre-filters probes against the step's own domains, and
//!    prunes the seed frontier with the second step's domains before any
//!    tuple exists. All pruned work counts into `filter_pruned`.
//!
//! ## Blocked demand-driven drive
//!
//! With `EngineConfig::blocked_join_drive` (the default for ≥ 2-pattern
//! queries on the ref path), the breadth-first step loop is replaced by a
//! pull-based drive: the seed frontier is taken in runs of
//! `join_block_tuples` seed tuples, and each run is driven depth-first
//! through *every* remaining step before the next run starts. The
//! per-step indexes are still built once, up front, exactly as the
//! breadth-first drive builds them.
//!
//! Within a run the recursion is *chunked*: a non-final step consumes its
//! input frontier in [`EXPAND_CHUNK`]-tuple windows, probes one window
//! into the level's reused scratch arena (one **expansion**, capped at
//! `max_intermediate` tuples), and recurses on the expansion before the
//! next window runs. The final step appends straight into the drive's
//! output arena — survivors are never copied again. Windows run in input
//! order and the recursion is depth-first, so the output is in
//! nested-loop emission order: **byte-identical** to breadth-first
//! whenever no cap trips, and a *prefix in nested-loop emission order* of
//! the untruncated result when `max_intermediate` (or a governor budget)
//! trips — a strictly stronger contract than breadth-first truncation
//! (which keeps cap-sized prefixes of each intermediate frontier
//! instead). The win is emission-bound queries: once the output cap
//! fills, every unconsumed window — and every remaining seed run — is
//! never driven at all, where breadth-first would have materialized
//! cap-sized frontiers at every step first. Live intermediate memory is
//! bounded by the per-level scratch high-water marks instead of
//! whole-step frontiers.
//!
//! Cap/truncation semantics: the seed expansion is exempt from the
//! intermediate cap (it is bounded by the block size by construction,
//! which also keeps sideways seed pruning emission-invariant under
//! truncation); an expansion that hits `max_intermediate` is still
//! recursed on — its prefix's subtree finishes — and then cuts the run,
//! stopping the drive after it; the final step draws on the output
//! budget (`max_intermediate` across the whole drive): the exact
//! remaining room in the serial drive, the shared [`JoinBudget`] at run
//! granularity in the parallel one — runs merge in ascending seed order
//! with speculative overshoot trimmed, so both drives keep the same
//! prefix.
//!
//! Governor integration: a memory budget forces the serial drive, which
//! *live-charges* each expansion's bytes while its subtree runs and the
//! appended output permanently — a trip stops the drive at a
//! deterministic tuple (error mode unwinds, partial mode keeps the
//! emission-order prefix). Deadline/cancel trips are polled inside every
//! probe loop in both drives; the parallel merge drops a tripped run's
//! partial output and stops at the previous run boundary, while the
//! serial drive keeps its own partial emission (either way a valid
//! emission-order prefix).
//!
//! The materializing path (`late_materialization = false`, the seed's
//! pipeline) joins `Event` batches serially, kept for ablation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use aiql_lang::TemporalOp;
use aiql_model::{EntityId, Event};
use aiql_storage::IdSet;

use crate::analyze::{AnalyzedMultievent, StepRel};
use crate::error::EngineError;
use crate::governor::{GovGate, Governor, Trip};
use crate::op::{
    worker_panic, Batch, EventRef, ExecEnv, Frontier, JoinStepStat, OpIo, Operator, PartTable,
    PipelineState, RefArena, Tuple, NO_REF, NO_VAR,
};

/// How many appended tuples a join partition produces between refreshes of
/// its shared-budget cap. Bounds how far a partition can overshoot the
/// budget before it notices earlier partitions have already filled it.
const BUDGET_REFRESH: usize = 4096;

/// Target bucket count of a timed index's [`BucketGrid`]. The bucket width
/// is the candidate start-time range divided by this (floored to ≥ 1 µs),
/// so sparse steps get wide buckets and dense steps fine ones.
const TIME_BUCKETS: i64 = 256;

/// Posting-list refs covered by one zone-map entry of a timed index. The
/// probe skips a whole chunk when its (min, max) start-bucket zone cannot
/// intersect the tuple's admissible bucket range.
const BUCKET_CHUNK: usize = 64;

/// Ceiling on blocked-drive run count: with more seed tuples than
/// `MAX_RUNS × join_block_tuples`, the effective block grows instead. The
/// result is byte-identical across block sizes, and the clamp keeps the
/// shared output budget's prefix sums (O(runs) per refresh) cheap.
const MAX_RUNS: usize = 4096;

/// Input tuples per expansion window of the blocked drive's depth-first
/// recursion: each window probes one step into that level's reused scratch
/// arena and recurses on the result before the next window runs. Small
/// enough that live per-level expansions stay allocation-light, large
/// enough that the per-window bookkeeping (timers, cap trackers)
/// disappears against probe work.
const EXPAND_CHUNK: usize = 256;

/// The multi-way join operator.
#[derive(Debug, Clone, Copy, Default)]
pub struct TemporalJoin;

impl TemporalJoin {
    pub(crate) fn new() -> Self {
        TemporalJoin
    }
}

impl Operator for TemporalJoin {
    fn kind(&self) -> &'static str {
        "TemporalJoin"
    }

    fn run(&self, env: &ExecEnv<'_>, st: &mut PipelineState) -> Result<OpIo, EngineError> {
        if st.done {
            // A pattern came back empty: the frontier stays empty, and the
            // projection above produces the empty table.
            st.stats.tuples = 0;
            return Ok(OpIo::default());
        }
        let candidates = std::mem::take(&mut st.candidates);
        let rows_in: usize = candidates
            .iter()
            .map(|c| c.as_ref().map(Batch::len).unwrap_or(0))
            .sum();
        let late = matches!(candidates.first(), Some(Some(Batch::Refs(_))));
        let cand_bytes = rows_in as u64
            * if late {
                std::mem::size_of::<EventRef>() as u64
            } else {
                std::mem::size_of::<Event>() as u64
            };
        let (frontier, run) = if late {
            let lists: Vec<Vec<EventRef>> = candidates
                .into_iter()
                .map(|c| match c {
                    Some(Batch::Refs(v)) => v,
                    _ => unreachable!("late path fetched refs for every pattern"),
                })
                .collect();
            let (arena, run) = join_refs(env, lists, &st.domains)?;
            (Frontier::Refs(arena), run)
        } else {
            let lists: Vec<Vec<Event>> = candidates
                .into_iter()
                .map(|c| match c {
                    Some(Batch::Events(v)) => v,
                    _ => unreachable!("materializing path fetched events for every pattern"),
                })
                .collect();
            let (tuples, run) = join_events(env, lists)?;
            (Frontier::Events(tuples), run)
        };
        // The candidate batches the scans charged are consumed now; only
        // the frontier (charged per step inside the join) remains live.
        if let Some(g) = env.gov() {
            g.uncharge(cand_bytes);
        }
        st.truncated = run.truncated;
        st.stats.tuples = frontier.len();
        let rows_out = frontier.len();
        st.frontier = frontier;
        Ok(OpIo {
            rows_in,
            rows_out,
            fanout: run.fanout,
            build_nanos: run.build_nanos,
            probe_nanos: run.probe_nanos,
            probe_hits: run.probe_hits,
            bucket_skipped: run.bucket_skipped,
            filter_pruned: run.filter_pruned,
            runs_driven: run.runs_driven,
            emitted_tuples: run.emitted_tuples,
            breadth_bound_tuples: run.breadth_bound_tuples,
            early_exit_depth: run.early_exit_depth,
            join_steps: run.steps,
        })
    }
}

/// Aggregate accounting of one join execution: truncation, widest
/// partition/shard fan-out, the per-phase timing split (index builds vs
/// frontier probes, summed over join steps), the probe-reduction counters,
/// and the per-step breakdown for EXPLAIN ANALYZE.
#[derive(Debug, Clone, Default)]
struct JoinRun {
    truncated: bool,
    fanout: usize,
    build_nanos: u64,
    probe_nanos: u64,
    probe_hits: u64,
    bucket_skipped: u64,
    filter_pruned: u64,
    /// Blocked drive only: seed runs merged into the output.
    runs_driven: u64,
    /// Blocked drive only: tuples appended across all merged runs' steps.
    emitted_tuples: u64,
    /// Blocked drive only: what the breadth-first drive would have emitted
    /// (exact when the drive completed; the per-step cap bound when it
    /// exited early).
    breadth_bound_tuples: u64,
    /// Blocked drive only: the step depth at which the drive stopped
    /// emitting (`None` = every run was driven to completion).
    early_exit_depth: Option<usize>,
    steps: Vec<JoinStepStat>,
}

/// Join-step partition count for `work` probe items, or `None` for serial.
pub(crate) fn join_partitions(env: &ExecEnv<'_>, work: usize) -> Option<usize> {
    if !env.config.parallel_join || env.pool.is_none() {
        return None;
    }
    if env.config.join_partitions > 0 {
        // Explicit partition count: force the parallel path (tests and
        // ablations exercise tiny frontiers through it).
        (work >= 2).then_some(env.config.join_partitions.min(work))
    } else {
        let threads = env.config.parallelism.max(1);
        (threads > 1 && work >= env.config.parallel_join_min_work).then(|| (threads * 4).min(work))
    }
}

/// Packs the at-most-two bound entity ids of a pattern into one `u64`
/// (`NO_VAR` pads the unused half).
#[inline]
fn pack(ids: [u32; 2]) -> u64 {
    (u64::from(ids[0]) << 32) | u64::from(ids[1])
}

/// SplitMix64 finalizer: spreads packed entity-id keys across shards (the
/// raw keys are dense small integers — `key % shards` would pile them up).
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// The shard owning `key` in an `n`-shard index.
#[inline]
fn shard_of(key: u64, n: usize) -> usize {
    (mix(key) % n as u64) as usize
}

/// Like [`shard_of`], skipping the hash for single-shard indexes.
#[inline]
fn route(key: u64, n: usize) -> usize {
    if n == 1 {
        0
    } else {
        shard_of(key, n)
    }
}

/// One scatter chunk's output: a (key, ref) bucket per shard.
type ShardBuckets = Vec<Vec<(u64, EventRef)>>;

/// One timed scatter row: key, ref, and its start/end times in micros.
type TimedRow = (u64, EventRef, i64, i64);

/// One timed scatter chunk's output: a [`TimedRow`] bucket per shard.
type TimedShardBuckets = Vec<Vec<TimedRow>>;

/// Start-time bucket grid of a timed step index, sized at build time from
/// the candidate range ([`TIME_BUCKETS`] target buckets, width ≥ 1 µs).
/// `max_dur`/`min_dur` are the extreme candidate durations, folding the
/// probe's admissible *end* interval onto start buckets (a candidate with
/// `end ≥ elo` must have `start ≥ elo − max_dur`, and with `end ≤ ehi`
/// must have `start ≤ ehi − min_dur`).
#[derive(Debug, Clone, Copy)]
struct BucketGrid {
    /// Start-time origin: the smallest candidate start.
    base: i64,
    /// Bucket width in microseconds (≥ 1).
    width: i64,
    /// Bucket count covering the candidate start range.
    buckets: u32,
    /// Largest candidate duration (`end − start`), ≥ 0.
    max_dur: i64,
    /// Smallest candidate duration (may be 0; negative only on malformed
    /// events, which the fold then still covers soundly).
    min_dur: i64,
}

impl BucketGrid {
    /// Build-side bucket id of a candidate start in `[base, max_start]`.
    #[inline]
    fn bucket_of(&self, start: i64) -> u16 {
        (start.saturating_sub(self.base) / self.width) as u16
    }

    /// Probe-side bucket id of an arbitrary instant, clamped to the grid.
    #[inline]
    fn clamp(&self, t: i64) -> u16 {
        let b = t.saturating_sub(self.base) / self.width;
        b.clamp(0, i64::from(self.buckets - 1)) as u16
    }
}

/// Running start-time/duration aggregate of a timed index build, reduced
/// across scatter chunks before the grid is fixed.
#[derive(Debug, Clone, Copy)]
struct TimeAgg {
    min_start: i64,
    max_start: i64,
    max_dur: i64,
    min_dur: i64,
}

impl Default for TimeAgg {
    fn default() -> Self {
        TimeAgg {
            min_start: i64::MAX,
            max_start: i64::MIN,
            max_dur: 0,
            min_dur: 0,
        }
    }
}

impl TimeAgg {
    #[inline]
    fn add(&mut self, s: i64, e: i64) {
        self.min_start = self.min_start.min(s);
        self.max_start = self.max_start.max(s);
        let dur = e.saturating_sub(s);
        self.max_dur = self.max_dur.max(dur);
        self.min_dur = self.min_dur.min(dur);
    }

    fn merge(&mut self, o: &TimeAgg) {
        self.min_start = self.min_start.min(o.min_start);
        self.max_start = self.max_start.max(o.max_start);
        self.max_dur = self.max_dur.max(o.max_dur);
        self.min_dur = self.min_dur.min(o.min_dur);
    }

    /// The bucket grid covering the observed start range (a degenerate
    /// one-bucket grid when no candidate survived the build filter).
    fn grid(&self) -> BucketGrid {
        if self.min_start > self.max_start {
            return BucketGrid {
                base: 0,
                width: 1,
                buckets: 1,
                max_dur: 0,
                min_dur: 0,
            };
        }
        let range = self.max_start.saturating_sub(self.min_start);
        let width = (range / TIME_BUCKETS + 1).max(1);
        BucketGrid {
            base: self.min_start,
            width,
            buckets: (range / width + 1) as u32,
            max_dur: self.max_dur,
            min_dur: self.min_dur,
        }
    }
}

/// One key's posting list in a timed index: refs in candidate order with
/// their start/end times as dense columns (the probe's exact temporal
/// check reads these instead of re-resolving partition rows), plus a
/// (min, max) start-bucket zone per [`BUCKET_CHUNK`] refs for skipping.
#[derive(Debug, Default)]
struct Postings {
    refs: Vec<EventRef>,
    starts: Vec<i64>,
    ends: Vec<i64>,
    zones: Vec<(u16, u16)>,
}

impl Postings {
    #[inline]
    fn push(&mut self, r: EventRef, s: i64, e: i64, bucket: u16) {
        if self.refs.len().is_multiple_of(BUCKET_CHUNK) {
            self.zones.push((bucket, bucket));
        } else {
            let z = self.zones.last_mut().expect("zone entry exists");
            z.0 = z.0.min(bucket);
            z.1 = z.1.max(bucket);
        }
        self.refs.push(r);
        self.starts.push(s);
        self.ends.push(e);
    }
}

/// One join step's candidate hash index: key-hash shards (1 = serial
/// build) of plain ref lists, or — when the step has temporal relations
/// to placed patterns and `time_bucket_join` is on — of time-bucketed
/// [`Postings`]. Probes hash the key to its shard, so sharded and single
/// indexes answer identically; the build preserves candidate order within
/// every key's ref list (scatter chunks are contiguous candidate ranges
/// gathered in chunk order), so the probe traversal — and therefore the
/// joined frontier — is byte-identical to the serial build.
enum StepIndex {
    Plain(Vec<HashMap<u64, Vec<EventRef>>>),
    Timed {
        shards: Vec<HashMap<u64, Postings>>,
        grid: BucketGrid,
    },
}

impl StepIndex {
    /// Build fan-out used (1 = serial).
    fn shard_count(&self) -> usize {
        match self {
            StepIndex::Plain(s) => s.len(),
            StepIndex::Timed { shards, .. } => shards.len(),
        }
    }

    /// Posting-list length under `key` (sizes the first step's probe work).
    fn posting_len(&self, key: u64) -> usize {
        match self {
            StepIndex::Plain(shards) => shards[route(key, shards.len())]
                .get(&key)
                .map_or(0, Vec::len),
            StepIndex::Timed { shards, .. } => shards[route(key, shards.len())]
                .get(&key)
                .map_or(0, |p| p.refs.len()),
        }
    }

    /// Total refs across every posting (an upper bound on one frontier
    /// tuple's emission, used to size the output reservation).
    fn total_refs(&self) -> usize {
        match self {
            StepIndex::Plain(shards) => shards.iter().flat_map(HashMap::values).map(Vec::len).sum(),
            StepIndex::Timed { shards, .. } => shards
                .iter()
                .flat_map(HashMap::values)
                .map(|p| p.refs.len())
                .sum(),
        }
    }

    /// Time-bucket count (0 = untimed index).
    fn buckets(&self) -> u32 {
        match self {
            StepIndex::Plain(_) => 0,
            StepIndex::Timed { grid, .. } => grid.buckets,
        }
    }

    /// Bucket width in micros (0 = untimed index).
    fn bucket_width(&self) -> i64 {
        match self {
            StepIndex::Plain(_) => 0,
            StepIndex::Timed { grid, .. } => grid.width,
        }
    }
}

/// Shard count for building a step's index over `candidates` refs, or
/// `None` for the serial build. Sharding only pays when the step has bound
/// variables (`bound`): the first step's single proto bucket puts every
/// candidate under one key, where sharding is pure overhead.
fn index_shards(env: &ExecEnv<'_>, candidates: usize, bound: bool) -> Option<usize> {
    if !bound || !env.config.parallel_join || env.pool.is_none() {
        return None;
    }
    if env.config.join_partitions > 0 {
        // Explicit partition count: force the sharded build (tests and
        // ablations exercise tiny candidate lists through it).
        (candidates >= 2).then_some(env.config.join_partitions.min(candidates))
    } else {
        let threads = env.config.parallelism.max(1);
        (threads > 1 && candidates >= env.config.parallel_index_min_build)
            .then(|| (threads * 2).min(candidates))
    }
}

/// Builds a step's candidate index, fanning the build out into key-hash
/// shards when [`index_shards`] says it pays. The parallel build runs in
/// two phases on the scan executor: *scatter* — contiguous candidate
/// chunks bucket their (key, ref) pairs by shard — then *gather* — each
/// shard inserts its buckets in chunk order. Both phases preserve
/// candidate order per key.
/// When `timed`, the index resolves every candidate's start/end once at
/// build time (one segment locate per candidate instead of one per probe
/// match) and carries them as dense posting columns under a [`BucketGrid`]
/// reduced from per-chunk time aggregates.
fn build_index(
    env: &ExecEnv<'_>,
    refs: &[EventRef],
    same_var: bool,
    key_of: &(dyn Fn(EventRef) -> u64 + Sync),
    bound: bool,
    timed: bool,
) -> Result<StepIndex, EngineError> {
    let parts = &env.parts;
    let nshards = index_shards(env, refs.len(), bound).filter(|&s| s > 1);
    let Some(nshards) = nshards else {
        if timed {
            let mut rows: Vec<TimedRow> = Vec::with_capacity(refs.len());
            let mut agg = TimeAgg::default();
            for &r in refs {
                if same_var && parts.subject(r) != parts.object(r) {
                    continue;
                }
                let (s, e) = parts.start_end(r);
                agg.add(s, e);
                rows.push((key_of(r), r, s, e));
            }
            let grid = agg.grid();
            let mut index: HashMap<u64, Postings> = HashMap::new();
            for (key, r, s, e) in rows {
                index
                    .entry(key)
                    .or_default()
                    .push(r, s, e, grid.bucket_of(s));
            }
            return Ok(StepIndex::Timed {
                shards: vec![index],
                grid,
            });
        }
        let mut index: HashMap<u64, Vec<EventRef>> = HashMap::new();
        for &r in refs {
            if same_var && parts.subject(r) != parts.object(r) {
                continue;
            }
            index.entry(key_of(r)).or_default().push(r);
        }
        return Ok(StepIndex::Plain(vec![index]));
    };
    let Some(pool) = env.pool.as_ref() else {
        return Err(crate::op::internal(
            "sharded index build scheduled without a scan executor",
        ));
    };
    let workers = env.config.parallelism.max(1);
    let chunk = refs.len().div_ceil(nshards);
    if timed {
        // Scatter: chunk c buckets its candidate range by shard, tracking
        // the chunk's local time aggregate.
        let scattered: Vec<Mutex<(TimedShardBuckets, TimeAgg)>> = (0..nshards)
            .map(|_| Mutex::new((Vec::new(), TimeAgg::default())))
            .collect();
        pool.run_chunks_capped(nshards, workers, &|c| {
            let lo = (c * chunk).min(refs.len());
            let hi = (lo + chunk).min(refs.len());
            let mut buckets: TimedShardBuckets = (0..nshards).map(|_| Vec::new()).collect();
            let mut agg = TimeAgg::default();
            for &r in &refs[lo..hi] {
                if same_var && parts.subject(r) != parts.object(r) {
                    continue;
                }
                let key = key_of(r);
                let (s, e) = parts.start_end(r);
                agg.add(s, e);
                buckets[shard_of(key, nshards)].push((key, r, s, e));
            }
            *crate::op::lock_clean(&scattered[c]) = (buckets, agg);
        })
        .map_err(worker_panic)?;
        let scattered: Vec<(TimedShardBuckets, TimeAgg)> =
            scattered.into_iter().map(crate::op::unwrap_clean).collect();
        // The grid reduces over chunk aggregates on the query thread, so
        // every shard gathers against the same (deterministic) grid.
        let mut agg = TimeAgg::default();
        for (_, chunk_agg) in &scattered {
            agg.merge(chunk_agg);
        }
        let grid = agg.grid();
        // Gather: shard s drains every chunk's bucket s, in chunk order.
        let shards: Vec<Mutex<HashMap<u64, Postings>>> =
            (0..nshards).map(|_| Mutex::new(HashMap::new())).collect();
        pool.run_chunks_capped(nshards, workers, &|s| {
            let mut map: HashMap<u64, Postings> = HashMap::new();
            for (chunk_buckets, _) in &scattered {
                for &(key, r, start, end) in &chunk_buckets[s] {
                    map.entry(key)
                        .or_default()
                        .push(r, start, end, grid.bucket_of(start));
                }
            }
            *crate::op::lock_clean(&shards[s]) = map;
        })
        .map_err(worker_panic)?;
        return Ok(StepIndex::Timed {
            shards: shards.into_iter().map(crate::op::unwrap_clean).collect(),
            grid,
        });
    }
    // Scatter: chunk c buckets its candidate range by shard.
    let scattered: Vec<Mutex<ShardBuckets>> =
        (0..nshards).map(|_| Mutex::new(Vec::new())).collect();
    pool.run_chunks_capped(nshards, workers, &|c| {
        let lo = (c * chunk).min(refs.len());
        let hi = (lo + chunk).min(refs.len());
        let mut buckets: ShardBuckets = (0..nshards).map(|_| Vec::new()).collect();
        for &r in &refs[lo..hi] {
            if same_var && parts.subject(r) != parts.object(r) {
                continue;
            }
            let key = key_of(r);
            buckets[shard_of(key, nshards)].push((key, r));
        }
        *crate::op::lock_clean(&scattered[c]) = buckets;
    })
    .map_err(worker_panic)?;
    let scattered: Vec<ShardBuckets> = scattered.into_iter().map(crate::op::unwrap_clean).collect();
    // Gather: shard s drains every chunk's bucket s, in chunk order.
    let shards: Vec<Mutex<HashMap<u64, Vec<EventRef>>>> =
        (0..nshards).map(|_| Mutex::new(HashMap::new())).collect();
    pool.run_chunks_capped(nshards, workers, &|s| {
        let mut map: HashMap<u64, Vec<EventRef>> = HashMap::new();
        for chunk_buckets in &scattered {
            for &(key, r) in &chunk_buckets[s] {
                map.entry(key).or_default().push(r);
            }
        }
        *crate::op::lock_clean(&shards[s]) = map;
    })
    .map_err(worker_panic)?;
    Ok(StepIndex::Plain(
        shards.into_iter().map(crate::op::unwrap_clean).collect(),
    ))
}

/// Shared truncation budget of one parallel join step. `produced[k]` is a
/// monotone running count of partition `k`'s appended tuples (published
/// every [`BUDGET_REFRESH`] appends and at completion), so any partition
/// can compute a lower bound on the tuples committed before it in merge
/// order — a running count can only grow toward its final value, so the
/// bound stays sound. Publishing progress (not just completion) keeps the
/// peak intermediate memory of a truncating step near `max` plus a
/// refresh-interval of slack per partition, instead of `max` *per
/// partition*.
struct JoinBudget {
    max: usize,
    produced: Vec<AtomicUsize>,
}

impl JoinBudget {
    fn new(max: usize, partitions: usize) -> Self {
        JoinBudget {
            max,
            produced: (0..partitions).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Upper bound on how many tuples partition `k` could still contribute
    /// to the merged frontier. Earlier partitions' published counts only
    /// push this down, never up, so acting on a stale value is sound.
    fn cap(&self, k: usize) -> usize {
        let committed_before: usize = self.produced[..k]
            .iter()
            .map(|d| d.load(Ordering::Acquire))
            .sum();
        self.max.saturating_sub(committed_before)
    }

    /// Publishes partition `k`'s running (monotone) tuple count.
    fn publish(&self, k: usize, produced: usize) {
        self.produced[k].store(produced, Ordering::Release);
    }
}

/// Append-budget tracker of one join drive: stops the drive at `cap`
/// appended tuples, periodically tightening the cap from the shared
/// budget (parallel partitions only — the serial drive's cap is fixed at
/// `max_intermediate`).
struct CapTracker<'b> {
    cap: usize,
    shared: Option<(&'b JoinBudget, usize)>,
    /// Governor polled at each refresh (dense append runs — the single
    /// proto bucket — reach it through `exhausted` even without per-tuple
    /// gate ticks).
    gov: Option<&'b Governor>,
    /// Set when a governor trip (not budget exhaustion) stopped the drive.
    gov_stop: bool,
    next_refresh: usize,
}

impl<'b> CapTracker<'b> {
    fn fixed(cap: usize, gov: Option<&'b Governor>) -> Self {
        CapTracker {
            cap,
            shared: None,
            gov,
            gov_stop: false,
            next_refresh: if gov.is_some() {
                BUDGET_REFRESH
            } else {
                usize::MAX
            },
        }
    }

    fn shared(budget: &'b JoinBudget, k: usize, gov: Option<&'b Governor>) -> Self {
        CapTracker {
            cap: budget.cap(k),
            shared: Some((budget, k)),
            gov,
            gov_stop: false,
            next_refresh: BUDGET_REFRESH,
        }
    }

    /// Called after each append with the drive's output length; `true`
    /// means stop (the budget is exhausted, or the governor tripped — see
    /// `gov_stop`). The cap only ever shrinks, so stopping is final. On
    /// each refresh the drive's own progress is published, tightening the
    /// caps of later partitions while this one is still running.
    #[inline]
    fn exhausted(&mut self, len: usize) -> bool {
        if len >= self.next_refresh {
            if let Some((budget, k)) = self.shared {
                budget.publish(k, len);
                self.cap = self.cap.min(budget.cap(k));
            }
            if self.gov.is_some_and(|g| g.check().is_err()) {
                self.gov_stop = true;
                return true;
            }
            self.next_refresh = len + BUDGET_REFRESH;
        }
        len >= self.cap
    }
}

/// One join-step drive's output: the extended frontier, whether the row
/// cap truncated it, and whether it ran to completion (`complete = false`
/// means a governor trip stopped the drive early; the output is a prefix
/// of the untripped step output).
struct StepOut {
    arena: RefArena,
    truncated: bool,
    complete: bool,
}

/// Join order shared by the ref and materializing paths (they must emit
/// identical tuple order): seed with the smallest candidate list, then
/// greedily place the smallest-candidate pattern *connected* to the
/// placed set — by a shared variable first, by a temporal relation
/// second. A variable-sharing step probes by key and a related step
/// prunes by time, but an unconnected pick cross-products the frontier
/// straight into `max_intermediate` and every later step pays to probe
/// the blow-up.
fn plan_join_order(a: &AnalyzedMultievent, sizes: &[usize]) -> Vec<usize> {
    let n = sizes.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut var_bound = vec![false; a.vars.len()];
    for _ in 0..n {
        let next = (0..n)
            .filter(|&i| !placed[i])
            .min_by_key(|&i| {
                let p = &a.patterns[i];
                let class = if order.is_empty() || var_bound[p.subject] || var_bound[p.object] {
                    0
                } else if !a.step_relations(i, &placed).is_empty() {
                    1
                } else {
                    2
                };
                (class, sizes[i], i)
            })
            .expect("a pattern remains unplaced");
        placed[next] = true;
        var_bound[a.patterns[next].subject] = true;
        var_bound[a.patterns[next].object] = true;
        order.push(next);
    }
    order
}

/// Multi-way hash join over per-pattern *reference* lists: the tuple
/// frontier lives in a flat [`RefArena`] (no per-tuple allocation). Returns
/// the final frontier plus the run accounting (truncation, widest fan-out,
/// build/probe timing split).
///
/// Governor integration: the memory budget converts to a deterministic row
/// cap at each step start (`remaining_bytes / tuple_bytes`, min'd into
/// `max_intermediate`), so serial and parallel execution truncate at the
/// same tuple. Deadline/cancel trips stop the running drive at its next
/// poll; in partial mode the remaining steps then run ungoverned so the
/// preserved prefix completes (a prefix of any step's input extends to a
/// prefix of the final frontier), in error mode the trip unwinds here.
fn join_refs(
    env: &ExecEnv<'_>,
    candidates: Vec<Vec<EventRef>>,
    domains: &[Option<(IdSet, IdSet)>],
) -> Result<(RefArena, JoinRun), EngineError> {
    let a = env.a;
    let parts = &env.parts;
    let n = a.patterns.len();
    let nvars = a.vars.len();
    let tuple_bytes =
        (n * std::mem::size_of::<EventRef>() + nvars * std::mem::size_of::<u32>()) as u64;
    // Cleared after a partial-mode trip: the remaining steps complete the
    // preserved prefix without further governance.
    let mut gov = env.gov();
    let sizes: Vec<usize> = candidates.iter().map(Vec::len).collect();
    let join_order = plan_join_order(a, &sizes);

    // Sideways seed pruning (layer 3): before the first step seeds the
    // frontier, drop seed candidates whose shared-variable ids are absent
    // from the *second* step's candidate domains — such tuples probe a
    // missing key at step two and extend nothing. Restricting the filter
    // to the second step keeps the frontier byte-identical to the
    // unfiltered run even under a truncating `max_intermediate`: a dropped
    // tuple appends zero tuples at step two, so every surviving append
    // happens at the same position. Gated off under a memory budget (the
    // per-step row cap derives from live frontier bytes, which pruning
    // changes) and when the seed list itself could truncate.
    let mut seed_pruned: Option<Vec<EventRef>> = None;
    let mut seed_pruned_count: u64 = 0;
    if env.config.sideways_filters
        && n >= 2
        && gov.is_none_or(|g| !g.has_memory_budget())
        && candidates[join_order[0]].len() <= env.config.max_intermediate
    {
        let seed = join_order[0];
        let second = join_order[1];
        if let Some((subj, obj)) = &domains[second] {
            let sp = &a.patterns[seed];
            let qp = &a.patterns[second];
            // For every variable the seed shares with the second pattern:
            // (read the seed candidate's subject side?, partner domain).
            let mut checks: Vec<(bool, &IdSet)> = Vec::new();
            for (v, seed_is_subject) in [(sp.subject, true), (sp.object, false)] {
                if qp.subject == v {
                    checks.push((seed_is_subject, subj));
                }
                if qp.object == v && qp.object != qp.subject {
                    checks.push((seed_is_subject, obj));
                }
            }
            if !checks.is_empty() {
                let kept: Vec<EventRef> = candidates[seed]
                    .iter()
                    .copied()
                    .filter(|&r| {
                        checks.iter().all(|&(is_subj, set)| {
                            let id = if is_subj {
                                parts.subject(r)
                            } else {
                                parts.object(r)
                            };
                            set.contains(id)
                        })
                    })
                    .collect();
                seed_pruned_count = (candidates[seed].len() - kept.len()) as u64;
                seed_pruned = Some(kept);
            }
        }
    }

    if env.config.blocked_join_drive && n >= 2 {
        let seed = join_order[0];
        let seed_refs: &[EventRef] = seed_pruned.as_deref().unwrap_or(&candidates[seed]);
        return join_refs_blocked(
            env,
            &candidates,
            domains,
            &join_order,
            seed_refs,
            seed_pruned_count,
        );
    }

    let mut tuples = RefArena::new(n, nvars);
    tuples.resize_tuples(1);
    let mut run = JoinRun {
        fanout: 1,
        ..JoinRun::default()
    };
    let mut placed = vec![false; n];

    for &i in &join_order {
        let p = &a.patterns[i];
        let same_var = p.subject == p.object;
        // A pattern binds at most two variables, so the bound-var key
        // packs into one u64.
        let pattern_vars: [usize; 2] = [p.subject, p.object];
        let proto_vars = tuples.vars_of(0);
        let bound_vars: Vec<usize> = pattern_vars
            .iter()
            .take(if same_var { 1 } else { 2 })
            .copied()
            .filter(|&v| proto_vars[v] != NO_VAR)
            .collect();
        let mut counters = StepCounters::default();
        let seed_step = i == join_order[0];
        if seed_step {
            counters.filter_pruned += seed_pruned_count;
        }
        let base_refs: &[EventRef] = if seed_step {
            seed_pruned.as_deref().unwrap_or(&candidates[i])
        } else {
            &candidates[i]
        };
        let build_pruned = sideways_build_prune(
            env,
            domains,
            &placed,
            i,
            &bound_vars,
            base_refs,
            &mut counters.filter_pruned,
        );
        let refs: &[EventRef] = build_pruned.as_deref().unwrap_or(base_refs);
        let key_of_ref = |r: EventRef| {
            let mut ids = [NO_VAR; 2];
            for (slot, &v) in ids.iter_mut().zip(&bound_vars) {
                *slot = if v == p.subject {
                    parts.subject(r).raw()
                } else {
                    parts.object(r).raw()
                };
            }
            pack(ids)
        };
        // Temporal relations this step must verify (layer 1): with any
        // present and `time_bucket_join` on, the index carries time
        // columns and bucket zones for probe-side pruning.
        let rels = a.step_relations(i, &placed);
        let timed = env.config.time_bucket_join && !rels.is_empty();
        let t_build = Instant::now();
        let index = build_index(
            env,
            refs,
            same_var,
            &key_of_ref,
            !bound_vars.is_empty(),
            timed,
        )?;
        let step_build = t_build.elapsed().as_nanos() as u64;
        run.build_nanos += step_build;
        let mut step_fanout = index.shard_count();

        // Effective row cap of this step: `max_intermediate`, tightened by
        // the memory budget converted to rows. Reading `remaining_bytes`
        // happens on the query thread between steps, so the cap — and
        // therefore the truncation point — is identical for the serial and
        // parallel drives.
        let mut cap = env.config.max_intermediate;
        let mut mem_capped = false;
        if let Some(g) = gov {
            if g.has_memory_budget() {
                let rows = (g.remaining_bytes() / tuple_bytes) as usize;
                if rows < cap {
                    cap = rows;
                    mem_capped = true;
                }
            }
        }

        let step = JoinStep {
            env,
            parts,
            a,
            index: &index,
            bound_vars: &bound_vars,
            rels: &rels,
            // Probe-side pre-filter (layer 3): the step's own candidate
            // domains reject keys that cannot be in the index without
            // hashing (misses by construction, so results are unchanged).
            domains: if env.config.sideways_filters {
                domains[i].as_ref()
            } else {
                None
            },
            pattern: i,
            subject: p.subject,
            object: p.object,
        };
        // Probe work of this step: frontier tuples — except at the very
        // first step, whose single proto tuple probes one bucket holding
        // every candidate (partitioning that bucket follows storage
        // partition order, since candidates are collected that way).
        let single_proto = tuples.len() == 1 && bound_vars.is_empty();
        let work = if single_proto {
            step.index.posting_len(pack([NO_VAR; 2]))
        } else {
            tuples.len()
        };
        let t_probe = Instant::now();
        let out = if cap == 0 {
            // The budget is already spent: drives would overshoot a zero
            // cap by one in the serial case, so short-circuit to the empty
            // (still valid) prefix on both drives.
            StepOut {
                arena: RefArena::new(n, nvars),
                truncated: true,
                complete: true,
            }
        } else {
            match join_partitions(env, work) {
                Some(nparts)
                    if env.config.partitioned_probe
                        && !single_proto
                        && !bound_vars.is_empty()
                        && index.shard_count() > 1 =>
                {
                    // Key-partitioned drive (layer 2): probe partitioning
                    // aligned with the sharded build.
                    let _ = nparts;
                    step_fanout = step_fanout.max(index.shard_count());
                    step.partitioned(&tuples, cap, gov, &mut counters)?
                }
                Some(nparts) => {
                    step_fanout = step_fanout.max(nparts);
                    step.parallel(&tuples, nparts, single_proto, cap, gov, &mut counters)?
                }
                None => step.serial(&tuples, cap, gov, &mut counters),
            }
        };
        let step_probe = t_probe.elapsed().as_nanos() as u64;
        run.probe_nanos += step_probe;
        run.fanout = run.fanout.max(step_fanout);
        let prev_bytes = tuples.len() as u64 * tuple_bytes;
        let step_truncated = out.truncated;
        let step_complete = out.complete;
        tuples = out.arena;
        if let Some(g) = gov {
            // A drive only stops early after observing (and recording) a
            // trip, so the sticky trip below is the single source of truth.
            debug_assert!(step_complete || g.trip().is_some());
            // Swap the frontier's accounted bytes: the old frontier is
            // dropped, the new one is live.
            g.uncharge(prev_bytes);
            let _ = g.charge(tuples.len() as u64 * tuple_bytes);
            if mem_capped && step_truncated {
                // Hitting the memory-derived cap is a Memory trip, not the
                // `TooManyMatches` truncation.
                g.record(Trip::Memory);
            }
            if let Some(t) = g.trip() {
                if !g.partial() {
                    return Err(g.error(t));
                }
                gov = None;
            } else {
                run.truncated |= step_truncated;
            }
        } else {
            run.truncated |= step_truncated;
        }
        run.probe_hits += counters.probe_hits;
        run.bucket_skipped += counters.bucket_skipped;
        run.filter_pruned += counters.filter_pruned;
        run.steps.push(JoinStepStat {
            pattern: i,
            candidates: refs.len(),
            rows_out: tuples.len(),
            probes: counters.probes,
            probe_hits: counters.probe_hits,
            bucket_skipped: counters.bucket_skipped,
            filter_pruned: counters.filter_pruned,
            buckets: index.buckets(),
            bucket_width_micros: index.bucket_width(),
            build_nanos: step_build,
            probe_nanos: step_probe,
            fanout: step_fanout,
        });
        placed[i] = true;
        if tuples.len() == 0 {
            return Ok((tuples, run));
        }
    }
    Ok((tuples, run))
}

/// Sideways build-side pruning (layer 3) for the step placing pattern `i`:
/// drop candidates whose bound-variable ids are absent from some
/// already-placed partner pattern's candidate domain. The frontier only
/// ever carries ids drawn from every placed binder's domain, so a dropped
/// candidate could never have been probed — the index (and the frontier)
/// is unchanged. Returns `None` when no partner domain applies; otherwise
/// the kept refs, with the dropped count added to `pruned`.
fn sideways_build_prune(
    env: &ExecEnv<'_>,
    domains: &[Option<(IdSet, IdSet)>],
    placed: &[bool],
    i: usize,
    bound_vars: &[usize],
    base_refs: &[EventRef],
    pruned: &mut u64,
) -> Option<Vec<EventRef>> {
    if !env.config.sideways_filters || bound_vars.is_empty() {
        return None;
    }
    let a = env.a;
    let parts = &env.parts;
    let p = &a.patterns[i];
    let mut partner_sets: Vec<(usize, Vec<&IdSet>)> = Vec::new();
    for &v in bound_vars {
        let mut sets: Vec<&IdSet> = Vec::new();
        for (q, qp) in a.patterns.iter().enumerate() {
            if q == i || !placed[q] {
                continue;
            }
            let Some((subj, obj)) = &domains[q] else {
                continue;
            };
            if qp.subject == v {
                sets.push(subj);
            }
            if qp.object == v && qp.object != qp.subject {
                sets.push(obj);
            }
        }
        if !sets.is_empty() {
            partner_sets.push((v, sets));
        }
    }
    if partner_sets.is_empty() {
        return None;
    }
    let kept: Vec<EventRef> = base_refs
        .iter()
        .copied()
        .filter(|&r| {
            partner_sets.iter().all(|(v, sets)| {
                let id = if *v == p.subject {
                    parts.subject(r)
                } else {
                    parts.object(r)
                };
                sets.iter().all(|s| s.contains(id))
            })
        })
        .collect();
    *pruned += (base_refs.len() - kept.len()) as u64;
    Some(kept)
}

/// One pre-built step of the blocked drive: the per-step state the
/// breadth-first loop derives lazily between steps, computed up front.
/// Bound variables come from simulating variable placement over the join
/// order — identical to the proto-tuple bindings the breadth-first drive
/// reads, since every placed pattern binds its subject and object in
/// every tuple.
struct BlockedStep {
    pattern: usize,
    subject: usize,
    object: usize,
    bound_vars: Vec<usize>,
    rels: Vec<StepRel>,
    index: StepIndex,
    /// Candidate refs indexed (after sideways build pruning).
    candidates: usize,
    /// Candidates dropped by sideways build pruning (a per-step constant,
    /// counted once regardless of how many runs probe the index).
    candidate_pruned: u64,
    build_nanos: u64,
}

/// Control flow of the blocked drive's recursion: `Stop` ends the whole
/// drive — the output cap filled, an expansion cut the run, or the
/// governor tripped (the [`RunState`] flags say which).
#[derive(Clone, Copy, PartialEq)]
enum Flow {
    Continue,
    Stop,
}

/// Mutable state of one blocked drive: the per-level reused scratch
/// arenas plus the accounting the recursion accumulates. The serial drive
/// threads one `RunState` through every run, so each level's scratch
/// grows to its high-water mark once; the parallel drive gives each run
/// its own.
struct RunState {
    /// `levels[0]` holds the current run's seed expansion and `levels[j]`
    /// step `j`'s scratch output (`truncate(0)` between windows keeps
    /// capacity). The final step has no level — it appends straight into
    /// the drive's output arena.
    levels: Vec<RefArena>,
    /// Per-step probe counters, probe nanos, and emitted-tuple counts.
    ctrs: Vec<StepCounters>,
    nanos: Vec<u64>,
    rows: Vec<u64>,
    /// First step observed hitting the intermediate cap. The recursion
    /// finishes the truncated expansion's subtree before stopping, so a
    /// deeper step affected by the same stop records first.
    cut: Option<usize>,
    /// A governor trip stopped the drive mid-flight.
    gov_stop: bool,
    /// Error-mode governor trip, surfaced once the recursion unwinds.
    err: Option<EngineError>,
}

impl RunState {
    fn new(m: usize, n: usize, nvars: usize) -> Self {
        RunState {
            levels: (0..m).map(|_| RefArena::new(n, nvars)).collect(),
            ctrs: vec![StepCounters::default(); m],
            nanos: vec![0; m],
            rows: vec![0; m],
            cut: None,
            gov_stop: false,
            err: None,
        }
    }
}

/// One parallel run's result: its final-step survivors (in nested-loop
/// emission order) plus the run's accounting, merged in ascending seed
/// order by the coordinator. A default-initialized slot (empty `ctrs`)
/// marks a run skipped because earlier runs had already filled the
/// output budget.
#[derive(Default)]
struct RunOut {
    arena: RefArena,
    rows: Vec<u64>,
    ctrs: Vec<StepCounters>,
    nanos: Vec<u64>,
    cut: Option<usize>,
    gov_stop: bool,
}

/// The blocked drive's shared read-only state: the pre-built steps plus
/// everything a worker needs to drive one seed run depth-first.
struct BlockedDrive<'s, 'a> {
    env: &'s ExecEnv<'a>,
    steps: &'s [BlockedStep],
    domains: &'s [Option<(IdSet, IdSet)>],
    /// The single proto tuple the seed slice probes from.
    proto: RefArena,
    /// Expansion (non-seed, non-final) row cap: `max_intermediate`.
    icap: usize,
    /// Live memory accounting is on: a memory budget is set, which also
    /// forced the serial drive (one observer makes the trip point
    /// deterministic).
    charge: bool,
    tuple_bytes: u64,
}

impl BlockedDrive<'_, '_> {
    fn step_of(&self, j: usize) -> JoinStep<'_, '_> {
        let s = &self.steps[j];
        JoinStep {
            env: self.env,
            parts: &self.env.parts,
            a: self.env.a,
            index: &s.index,
            bound_vars: &s.bound_vars,
            rels: &s.rels,
            domains: if self.env.config.sideways_filters {
                self.domains[s.pattern].as_ref()
            } else {
                None
            },
            pattern: s.pattern,
            subject: s.subject,
            object: s.object,
        }
    }

    /// Probes step `j` for tuples `[lo, hi)` of `cur`, appending into
    /// `next`. Returns `(capped, gov_stop)`.
    #[allow(clippy::too_many_arguments)]
    fn probe_window(
        &self,
        j: usize,
        cur: &RefArena,
        lo: usize,
        hi: usize,
        next: &mut RefArena,
        caps: &mut CapTracker<'_>,
        ctr: &mut StepCounters,
        gov: Option<&Governor>,
    ) -> (bool, bool) {
        let js = self.step_of(j);
        let mut gate = GovGate::new(gov);
        for t in lo..hi {
            if gate.tick().is_some() {
                return (false, true);
            }
            if js.probe_into(cur, t, None, None, next, caps, ctr) {
                return (!caps.gov_stop, caps.gov_stop);
            }
        }
        (false, false)
    }

    /// Live memory accounting (serial drive under a memory budget only):
    /// charges `bytes`, stopping the drive on a trip — error mode stashes
    /// the unwind error in `st`.
    fn charge_live(&self, st: &mut RunState, gov: Option<&Governor>, bytes: u64) -> Flow {
        if !self.charge {
            return Flow::Continue;
        }
        let Some(g) = gov else {
            return Flow::Continue;
        };
        let _ = g.charge(bytes);
        if let Some(t) = g.trip() {
            if !g.partial() {
                st.err = Some(g.error(t));
            }
            st.gov_stop = true;
            return Flow::Stop;
        }
        Flow::Continue
    }

    fn uncharge(&self, gov: Option<&Governor>, bytes: u64) {
        if self.charge {
            if let Some(g) = gov {
                g.uncharge(bytes);
            }
        }
    }

    /// Expands frontier `cur` through steps `j..` depth-first (see the
    /// module docs): a non-final level windows `cur` into
    /// [`EXPAND_CHUNK`]-tuple probes, each filling the level's reused
    /// scratch (one expansion, at most `icap` tuples) and recursing on it
    /// before the next window runs; the final step appends straight into
    /// `out` under `out_caps`.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        j: usize,
        cur: &RefArena,
        st: &mut RunState,
        out: &mut RefArena,
        out_caps: &mut CapTracker<'_>,
        gov: Option<&Governor>,
    ) -> Flow {
        let m = self.steps.len();
        if j == m - 1 {
            let before = out.len();
            let t = Instant::now();
            let mut ctr = StepCounters::default();
            let (capped, gov_stop) =
                self.probe_window(j, cur, 0, cur.len(), out, out_caps, &mut ctr, gov);
            st.nanos[j] += t.elapsed().as_nanos() as u64;
            st.ctrs[j].merge(&ctr);
            let delta = (out.len() - before) as u64;
            st.rows[j] += delta;
            // Appended output stays live: charge it permanently.
            let charged = self.charge_live(st, gov, delta * self.tuple_bytes);
            if gov_stop {
                st.gov_stop = true;
                return Flow::Stop;
            }
            if charged == Flow::Stop || capped {
                return Flow::Stop;
            }
            return Flow::Continue;
        }
        let mut scratch = std::mem::take(&mut st.levels[j]);
        let mut flow = Flow::Continue;
        let mut lo = 0;
        while lo < cur.len() {
            let hi = (lo + EXPAND_CHUNK).min(cur.len());
            scratch.truncate(0);
            let t = Instant::now();
            let mut ctr = StepCounters::default();
            let mut caps = CapTracker::fixed(self.icap, gov);
            let (capped, gov_stop) =
                self.probe_window(j, cur, lo, hi, &mut scratch, &mut caps, &mut ctr, gov);
            st.nanos[j] += t.elapsed().as_nanos() as u64;
            st.ctrs[j].merge(&ctr);
            st.rows[j] += scratch.len() as u64;
            if gov_stop {
                st.gov_stop = true;
                flow = Flow::Stop;
                break;
            }
            let bytes = scratch.len() as u64 * self.tuple_bytes;
            if self.charge_live(st, gov, bytes) == Flow::Stop {
                flow = Flow::Stop;
                break;
            }
            let sub = self.expand(j + 1, &scratch, st, out, out_caps, gov);
            self.uncharge(gov, bytes);
            if sub == Flow::Stop {
                flow = Flow::Stop;
                break;
            }
            if capped {
                // The expansion hit the intermediate cap and its prefix's
                // subtree just finished: the run cuts here and the drive
                // stops after it.
                st.cut.get_or_insert(j);
                flow = Flow::Stop;
                break;
            }
            lo = hi;
        }
        st.levels[j] = scratch;
        flow
    }

    /// Drives seed slice `[lo, hi)` depth-first through every step: the
    /// seed expansion first (exempt from the intermediate cap — it is
    /// bounded by the block size by construction, which keeps sideways
    /// seed pruning emission-invariant under truncation), then the
    /// chunked recursion over the remaining steps.
    fn drive_run(
        &self,
        lo: usize,
        hi: usize,
        st: &mut RunState,
        out: &mut RefArena,
        out_caps: &mut CapTracker<'_>,
        gov: Option<&Governor>,
    ) -> Flow {
        let t0 = Instant::now();
        let mut seedbuf = std::mem::take(&mut st.levels[0]);
        seedbuf.truncate(0);
        let mut caps = CapTracker::fixed(usize::MAX, gov);
        let mut ctr = StepCounters::default();
        let js = self.step_of(0);
        let stopped = js.probe_into(
            &self.proto,
            0,
            Some((lo, hi)),
            None,
            &mut seedbuf,
            &mut caps,
            &mut ctr,
        );
        st.nanos[0] += t0.elapsed().as_nanos() as u64;
        st.ctrs[0].merge(&ctr);
        st.rows[0] += seedbuf.len() as u64;
        let flow = if stopped {
            // An uncapped tracker only stops on a governor trip.
            st.gov_stop = true;
            Flow::Stop
        } else {
            let bytes = seedbuf.len() as u64 * self.tuple_bytes;
            if self.charge_live(st, gov, bytes) == Flow::Stop {
                Flow::Stop
            } else {
                let flow = self.expand(1, &seedbuf, st, out, out_caps, gov);
                self.uncharge(gov, bytes);
                flow
            }
        };
        st.levels[0] = seedbuf;
        flow
    }
}

/// The blocked demand-driven drive (see the module docs): per-step
/// indexes built once up front, then the seed frontier driven depth-first
/// in bounded runs, merged in ascending seed order.
fn join_refs_blocked(
    env: &ExecEnv<'_>,
    candidates: &[Vec<EventRef>],
    domains: &[Option<(IdSet, IdSet)>],
    join_order: &[usize],
    seed_refs: &[EventRef],
    seed_pruned_count: u64,
) -> Result<(RefArena, JoinRun), EngineError> {
    let a = env.a;
    let n = a.patterns.len();
    let nvars = a.vars.len();
    let m = join_order.len();
    let tuple_bytes =
        (n * std::mem::size_of::<EventRef>() + nvars * std::mem::size_of::<u32>()) as u64;
    let gov = env.gov();
    let out_cap = env.config.max_intermediate;
    let mut run = JoinRun {
        fanout: 1,
        ..JoinRun::default()
    };

    // Build every step's index up front — the same builds, in the same
    // join order, as the breadth-first loop.
    let parts = &env.parts;
    let mut steps: Vec<BlockedStep> = Vec::with_capacity(m);
    let mut placed = vec![false; n];
    let mut var_bound = vec![false; nvars];
    for (ord, &i) in join_order.iter().enumerate() {
        let p = &a.patterns[i];
        let same_var = p.subject == p.object;
        let pattern_vars: [usize; 2] = [p.subject, p.object];
        let bound_vars: Vec<usize> = pattern_vars
            .iter()
            .take(if same_var { 1 } else { 2 })
            .copied()
            .filter(|&v| var_bound[v])
            .collect();
        let base_refs: &[EventRef] = if ord == 0 { seed_refs } else { &candidates[i] };
        let mut candidate_pruned = 0u64;
        let build_pruned = sideways_build_prune(
            env,
            domains,
            &placed,
            i,
            &bound_vars,
            base_refs,
            &mut candidate_pruned,
        );
        let refs: &[EventRef] = build_pruned.as_deref().unwrap_or(base_refs);
        let key_of_ref = |r: EventRef| {
            let mut ids = [NO_VAR; 2];
            for (slot, &v) in ids.iter_mut().zip(&bound_vars) {
                *slot = if v == p.subject {
                    parts.subject(r).raw()
                } else {
                    parts.object(r).raw()
                };
            }
            pack(ids)
        };
        let rels = a.step_relations(i, &placed);
        let timed = env.config.time_bucket_join && !rels.is_empty();
        let t_build = Instant::now();
        let index = build_index(
            env,
            refs,
            same_var,
            &key_of_ref,
            !bound_vars.is_empty(),
            timed,
        )?;
        let build_nanos = t_build.elapsed().as_nanos() as u64;
        run.build_nanos += build_nanos;
        run.fanout = run.fanout.max(index.shard_count());
        steps.push(BlockedStep {
            pattern: i,
            subject: p.subject,
            object: p.object,
            candidates: refs.len(),
            candidate_pruned,
            bound_vars,
            rels,
            index,
            build_nanos,
        });
        placed[i] = true;
        var_bound[p.subject] = true;
        var_bound[p.object] = true;
    }

    let mut proto = RefArena::new(n, nvars);
    proto.resize_tuples(1);
    let seed_total = steps[0].index.posting_len(pack([NO_VAR; 2]));

    // Output arena reserved to the drive's worst case — seed size times
    // the remaining steps' indexed-ref counts — clamped by the output cap
    // and the same 4 Mi-tuple lid the breadth-first per-step reservation
    // uses. Selective queries reserve small; emission-bound ones fill the
    // reservation exactly (the final step appends here directly, so this
    // is the only output allocation of the serial drive).
    let out_bound = steps[1..]
        .iter()
        .fold(seed_total, |b, s| b.saturating_mul(s.index.total_refs()))
        .min(out_cap)
        .min(1 << 22);
    let mut out = RefArena::with_capacity_tuples(n, nvars, out_bound);

    let mut truncated = false;
    let mut early_exit: Option<usize> = None;
    let mut runs_driven = 0u64;
    let mut step_rows: Vec<u64> = vec![0; m];
    let mut step_ctrs: Vec<StepCounters> = vec![StepCounters::default(); m];
    let mut step_nanos: Vec<u64> = vec![0; m];

    if out_cap == 0 {
        // The cap is already spent (a zero `max_intermediate`): the empty
        // prefix is the whole answer, as in the breadth-first drive.
        truncated = true;
    } else if seed_total > 0 {
        let block = env
            .config
            .join_block_tuples
            .max(1)
            .max(seed_total.div_ceil(MAX_RUNS));
        let nruns = seed_total.div_ceil(block);
        let charge = gov.is_some_and(|g| g.has_memory_budget());
        let drive = BlockedDrive {
            env,
            steps: &steps,
            domains,
            proto,
            icap: out_cap,
            charge,
            tuple_bytes,
        };
        let workers = env.config.parallelism.max(1);
        // A memory budget forces the serial drive: live charging yields a
        // deterministic trip point only with a single observer.
        let parallel = nruns >= 2 && !charge && join_partitions(env, seed_total).is_some();
        let t_probe = Instant::now();
        if parallel {
            let Some(pool) = env.pool.as_ref() else {
                return Err(crate::op::internal(
                    "blocked join drive scheduled without a scan executor",
                ));
            };
            let budget = JoinBudget::new(out_cap, nruns);
            let slots: Vec<Mutex<RunOut>> =
                (0..nruns).map(|_| Mutex::new(RunOut::default())).collect();
            pool.run_chunks_capped(nruns, workers, &|k| {
                // Skip runs that cannot contribute: the runs before this
                // one already produced the whole output cap, so the merge
                // stops before reaching it. This is the demand-driven win —
                // seed tuples nobody will consume are never driven.
                if budget.cap(k) == 0 {
                    return;
                }
                let lo = k * block;
                let hi = (lo + block).min(seed_total);
                let mut st = RunState::new(m, n, nvars);
                let mut local = RefArena::new(n, nvars);
                let mut caps = CapTracker::shared(&budget, k, gov);
                let _ = drive.drive_run(lo, hi, &mut st, &mut local, &mut caps, gov);
                budget.publish(k, local.len());
                *crate::op::lock_clean(&slots[k]) = RunOut {
                    arena: local,
                    rows: st.rows,
                    ctrs: st.ctrs,
                    nanos: st.nanos,
                    cut: st.cut,
                    gov_stop: st.gov_stop,
                };
            })
            .map_err(worker_panic)?;
            for slot in slots {
                let ro = crate::op::unwrap_clean(slot);
                if ro.ctrs.len() != m {
                    // A skipped run can only sit *after* the run that
                    // filled the output cap; reaching one means the
                    // budget logic broke.
                    return Err(crate::op::internal(
                        "blocked join drive merged a skipped run",
                    ));
                }
                if ro.gov_stop {
                    // The run stopped mid-flight on a trip: its partial
                    // output is dropped and the merged prefix ends at the
                    // previous run boundary (still a valid emission-order
                    // prefix).
                    if let Some(g) = gov {
                        if let Some(t) = g.trip() {
                            if !g.partial() {
                                return Err(g.error(t));
                            }
                        }
                    }
                    break;
                }
                // Trim speculative overshoot past the shared budget: the
                // kept prefix reproduces the serial drive's output exactly.
                let kept = ro.arena.len().min(out_cap - out.len());
                out.append_prefix(&ro.arena, kept);
                runs_driven += 1;
                for j in 0..m {
                    step_rows[j] += if j == m - 1 { kept as u64 } else { ro.rows[j] };
                    step_ctrs[j].merge(&ro.ctrs[j]);
                    step_nanos[j] += ro.nanos[j];
                }
                if let Some(j) = ro.cut {
                    truncated = true;
                    early_exit = Some(j);
                    break;
                }
                if out.len() >= out_cap {
                    truncated = true;
                    early_exit = Some(m - 1);
                    break;
                }
            }
            run.fanout = run.fanout.max(workers.min(nruns));
        } else {
            // Serial drive: one `RunState` (scratch reused across runs),
            // one absolute output tracker — the final step sees the exact
            // remaining room at all times.
            let mut st = RunState::new(m, n, nvars);
            let mut caps = CapTracker::fixed(out_cap, gov);
            for k in 0..nruns {
                let lo = k * block;
                let hi = (lo + block).min(seed_total);
                let flow = drive.drive_run(lo, hi, &mut st, &mut out, &mut caps, gov);
                runs_driven += 1;
                if let Some(e) = st.err.take() {
                    return Err(e);
                }
                if flow == Flow::Stop {
                    break;
                }
            }
            if st.gov_stop {
                // Partial mode keeps the emission-order prefix driven so
                // far; error mode unwinds (deadline/cancel trips observed
                // by the pollers rather than a live charge land here).
                if let Some(g) = gov {
                    if let Some(t) = g.trip() {
                        if !g.partial() {
                            return Err(g.error(t));
                        }
                    }
                }
            }
            step_rows = st.rows;
            step_ctrs = st.ctrs;
            step_nanos = st.nanos;
            if st.cut.is_some() {
                truncated = true;
                early_exit = st.cut;
            } else if out.len() >= out_cap {
                truncated = true;
                early_exit = Some(m - 1);
            }
        }
        run.probe_nanos += t_probe.elapsed().as_nanos() as u64;
    }

    run.truncated |= truncated;
    run.runs_driven = runs_driven;
    run.emitted_tuples = step_rows.iter().sum();
    run.early_exit_depth = early_exit;
    run.breadth_bound_tuples = if early_exit.is_none() {
        // Every run was driven to completion: breadth-first would have
        // emitted exactly these tuples.
        run.emitted_tuples
    } else {
        // Early exit: breadth-first would have filled up to the row cap at
        // every step (the seed bounded by its candidate count).
        seed_total.min(out_cap) as u64 + (m as u64 - 1) * out_cap as u64
    };
    for (j, s) in steps.iter().enumerate() {
        let mut c = step_ctrs[j];
        c.filter_pruned += s.candidate_pruned;
        if j == 0 {
            c.filter_pruned += seed_pruned_count;
        }
        run.probe_hits += c.probe_hits;
        run.bucket_skipped += c.bucket_skipped;
        run.filter_pruned += c.filter_pruned;
        run.steps.push(JoinStepStat {
            pattern: s.pattern,
            candidates: s.candidates,
            rows_out: step_rows[j] as usize,
            probes: c.probes,
            probe_hits: c.probe_hits,
            bucket_skipped: c.bucket_skipped,
            filter_pruned: c.filter_pruned,
            buckets: s.index.buckets(),
            bucket_width_micros: s.index.bucket_width(),
            build_nanos: s.build_nanos,
            probe_nanos: step_nanos[j],
            fanout: s.index.shard_count(),
        });
    }
    Ok((out, run))
}

/// Per-drive probe-reduction counters, merged across partitions/shards
/// into the step's [`JoinStepStat`].
#[derive(Debug, Clone, Copy, Default)]
struct StepCounters {
    /// Index lookups attempted (after the sideways pre-filter).
    probes: u64,
    /// Lookups that found a posting list.
    probe_hits: u64,
    /// Posting refs skipped by time-bucket pruning (never temporally
    /// verified).
    bucket_skipped: u64,
    /// Candidates/probes rejected by sideways domain filters.
    filter_pruned: u64,
}

impl StepCounters {
    fn merge(&mut self, o: &StepCounters) {
        self.probes += o.probes;
        self.probe_hits += o.probe_hits;
        self.bucket_skipped += o.bucket_skipped;
        self.filter_pruned += o.filter_pruned;
    }
}

/// One ref-join step: everything shared by its serial and parallel drives.
struct JoinStep<'s, 'a> {
    env: &'s ExecEnv<'a>,
    parts: &'s PartTable<'a>,
    a: &'s AnalyzedMultievent,
    index: &'s StepIndex,
    bound_vars: &'s [usize],
    /// Temporal relations to already-placed patterns (layer 1's per-tuple
    /// admissible intervals derive from these).
    rels: &'s [StepRel],
    /// This step's own candidate (subject, object) domains, when the
    /// sideways pre-filter is on.
    domains: Option<&'s (IdSet, IdSet)>,
    pattern: usize,
    subject: usize,
    object: usize,
}

impl JoinStep<'_, '_> {
    /// Probes the index for tuple `t` (restricted to the match-slice range
    /// `[mlo, mhi)` when partitioning a single proto tuple; pass the full
    /// range otherwise) and appends surviving extensions to `out`. `shard`
    /// pins the lookup to one index shard (the key-partitioned drive,
    /// which routed the tuple already); `None` routes by key hash. Returns
    /// `true` when the tracker's budget was exhausted — the caller must
    /// stop its drive.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn probe_into(
        &self,
        tuples: &RefArena,
        t: usize,
        range: Option<(usize, usize)>,
        shard: Option<usize>,
        out: &mut RefArena,
        caps: &mut CapTracker<'_>,
        ctr: &mut StepCounters,
    ) -> bool {
        let tvars = tuples.vars_of(t);
        let mut ids = [NO_VAR; 2];
        for (slot, &v) in ids.iter_mut().zip(self.bound_vars) {
            *slot = tvars[v];
        }
        // Sideways pre-filter: a bound id outside this step's candidate
        // domain cannot be in the index — skip the hash lookup.
        if let Some((subj, obj)) = self.domains {
            for (&v, &id) in self.bound_vars.iter().zip(&ids) {
                let set = if v == self.subject { subj } else { obj };
                if !set.contains(EntityId(id)) {
                    ctr.filter_pruned += 1;
                    return false;
                }
            }
        }
        let key = pack(ids);
        ctr.probes += 1;
        match self.index {
            StepIndex::Plain(shards) => {
                let k = shard.unwrap_or_else(|| route(key, shards.len()));
                let Some(matches) = shards[k].get(&key) else {
                    return false;
                };
                ctr.probe_hits += 1;
                let (mlo, mhi) = range.unwrap_or((0, matches.len()));
                for &r in &matches[mlo..mhi] {
                    if !temporal_ok_refs(self.a, self.parts, self.pattern, r, tuples, t) {
                        continue;
                    }
                    let (subj, obj) = self.parts.subject_object(r);
                    out.push_extended(
                        tuples,
                        t,
                        self.pattern,
                        r,
                        (self.subject, subj),
                        (self.object, obj),
                    );
                    if caps.exhausted(out.len()) {
                        return true;
                    }
                }
                false
            }
            StepIndex::Timed { shards, grid } => {
                debug_assert!(range.is_none(), "timed index never slices a proto bucket");
                let k = shard.unwrap_or_else(|| route(key, shards.len()));
                let Some(p) = shards[k].get(&key) else {
                    return false;
                };
                ctr.probe_hits += 1;
                // Admissible start/end intervals of a joining candidate,
                // derived once per tuple from the placed events — exactly
                // the constraints `temporal_ok_refs` verifies per match.
                let events = tuples.events_of(t);
                let (mut slo, mut shi) = (i64::MIN, i64::MAX);
                let (mut elo, mut ehi) = (i64::MIN, i64::MAX);
                for rel in self.rels {
                    let placed = events[rel.other];
                    if rel.cand_is_left {
                        // cand.end ≤ placed.start; a bound floors cand.end.
                        let ps = self.parts.start(placed).micros();
                        ehi = ehi.min(ps);
                        if let Some(b) = rel.bound {
                            elo = elo.max(ps.saturating_sub(b));
                        }
                    } else {
                        // placed.end ≤ cand.start; a bound ceils cand.start.
                        let pe = self.parts.end(placed).micros();
                        slo = slo.max(pe);
                        if let Some(b) = rel.bound {
                            shi = shi.min(pe.saturating_add(b));
                        }
                    }
                }
                // Fold the end interval onto start buckets through the
                // build-time duration extremes.
                let lo_t = slo.max(elo.saturating_sub(grid.max_dur));
                let hi_t = shi.min(ehi.saturating_sub(grid.min_dur));
                if slo > shi || elo > ehi || lo_t > hi_t {
                    ctr.bucket_skipped += p.refs.len() as u64;
                    return false;
                }
                let blo = grid.clamp(lo_t);
                let bhi = grid.clamp(hi_t);
                for (c, &(zmin, zmax)) in p.zones.iter().enumerate() {
                    let lo = c * BUCKET_CHUNK;
                    let hi = (lo + BUCKET_CHUNK).min(p.refs.len());
                    if zmax < blo || zmin > bhi {
                        ctr.bucket_skipped += (hi - lo) as u64;
                        continue;
                    }
                    for j in lo..hi {
                        let s = p.starts[j];
                        let e = p.ends[j];
                        if s < slo || s > shi || e < elo || e > ehi {
                            continue;
                        }
                        let r = p.refs[j];
                        let (subj, obj) = self.parts.subject_object(r);
                        out.push_extended(
                            tuples,
                            t,
                            self.pattern,
                            r,
                            (self.subject, subj),
                            (self.object, obj),
                        );
                        if caps.exhausted(out.len()) {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// The serial drive: identical traversal to the pre-operator fused
    /// loop. `cap` is the step's effective row cap; `gov` is polled every
    /// [`crate::governor::GOV_CHECK_INTERVAL`] tuples (and inside dense
    /// append runs via the tracker).
    fn serial(
        &self,
        tuples: &RefArena,
        cap: usize,
        gov: Option<&Governor>,
        ctr: &mut StepCounters,
    ) -> StepOut {
        let mut caps = CapTracker::fixed(cap, gov);
        // Reserve for the worst-case emission — every frontier tuple hits
        // every indexed ref — clamped by the row cap and a 4 Mi-tuple
        // ceiling so a pathological `max_intermediate` cannot reserve the
        // moon. Cap-bound steps fill the reservation exactly; small steps
        // reserve small, keeping short queries allocation-light.
        let bound = tuples
            .len()
            .saturating_mul(self.index.total_refs())
            .min(cap)
            .min(1 << 22);
        let mut next = RefArena::with_capacity_tuples(tuples.npatterns, tuples.nvars, bound);
        let mut truncated = false;
        let mut gate = GovGate::new(gov);
        for t in 0..tuples.len() {
            if gate.tick().is_some() {
                caps.gov_stop = true;
                break;
            }
            if self.probe_into(tuples, t, None, None, &mut next, &mut caps, ctr) {
                truncated = !caps.gov_stop;
                break;
            }
        }
        StepOut {
            complete: !caps.gov_stop,
            arena: next,
            truncated,
        }
    }

    /// The parallel drive: contiguous probe-range partitions on the scan
    /// executor, merged in partition order. A governor trip is observed by
    /// every partition (the trip is sticky and shared), each stops at its
    /// next poll, and the merge keeps complete partials in partition order
    /// up to the first incomplete one plus that partition's prefix — a
    /// prefix of the serial traversal.
    fn parallel(
        &self,
        tuples: &RefArena,
        nparts: usize,
        single_proto: bool,
        cap: usize,
        gov: Option<&Governor>,
        ctr: &mut StepCounters,
    ) -> Result<StepOut, EngineError> {
        let env = self.env;
        let Some(pool) = env.pool.as_ref() else {
            return Err(crate::op::internal(
                "parallel join scheduled without a scan executor",
            ));
        };
        let work = if single_proto {
            self.index.posting_len(pack([NO_VAR; 2]))
        } else {
            tuples.len()
        };
        let nparts = nparts.min(work).max(1);
        let per = work.div_ceil(nparts);
        let budget = JoinBudget::new(cap, nparts);
        let partials: Vec<std::sync::Mutex<(RefArena, bool, StepCounters)>> = (0..nparts)
            .map(|_| std::sync::Mutex::new((RefArena::default(), true, StepCounters::default())))
            .collect();

        pool.run_chunks_capped(nparts, env.config.parallelism.max(1), &|k| {
            // Rounding up `per` can leave trailing partitions empty; clamp
            // both bounds so their ranges are empty instead of invalid.
            let lo = (k * per).min(work);
            let hi = (lo + per).min(work);
            let mut out = RefArena::new(tuples.npatterns, tuples.nvars);
            let mut caps = CapTracker::shared(&budget, k, gov);
            let mut local = StepCounters::default();
            if single_proto {
                // Partitioning the first pattern: the proto tuple's single
                // bucket, sliced to the candidate range [lo, hi).
                self.probe_into(
                    tuples,
                    0,
                    Some((lo, hi)),
                    None,
                    &mut out,
                    &mut caps,
                    &mut local,
                );
            } else {
                let mut gate = GovGate::new(gov);
                for t in lo..hi {
                    if gate.tick().is_some() {
                        caps.gov_stop = true;
                        break;
                    }
                    if self.probe_into(tuples, t, None, None, &mut out, &mut caps, &mut local) {
                        break;
                    }
                }
            }
            budget.publish(k, out.len());
            *crate::op::lock_clean(&partials[k]) = (out, !caps.gov_stop, local);
        })
        .map_err(worker_panic)?;

        let partials: Vec<(RefArena, bool, StepCounters)> =
            partials.into_iter().map(crate::op::unwrap_clean).collect();
        for (_, _, local) in &partials {
            ctr.merge(local);
        }
        let total: usize = partials.iter().map(|(a, _, _)| a.len()).sum();
        let keep = total.min(cap);
        let mut merged = RefArena::new(tuples.npatterns, tuples.nvars);
        merged.events.reserve_exact(keep * tuples.npatterns);
        merged.vars.reserve_exact(keep * tuples.nvars);
        let mut complete = true;
        for (part, part_complete, _) in &partials {
            let room = keep - merged.len();
            merged.append_prefix(part, room);
            if !part_complete {
                // Later partitions' tuples would follow tuples this
                // partition never produced; dropping them keeps the merge
                // a prefix of the serial traversal.
                complete = false;
                break;
            }
        }
        // The serial loop flags truncation as soon as the frontier reaches
        // the cap. Early-stopped partitions only stop once the counts
        // published before them plus their own output reach the cap, so
        // `total` hits it exactly when the serial loop would have flagged —
        // and the merged prefix is the serial prefix.
        Ok(StepOut {
            truncated: complete && total >= cap,
            complete,
            arena: merged,
        })
    }

    /// The key-partitioned parallel drive (layer 2): instead of contiguous
    /// frontier ranges all probing the full shared index, shard `k` scans
    /// the whole frontier, keeps only tuples whose join key hashes to `k`,
    /// and probes its local index shard — probe partitioning aligned with
    /// the scatter/gather build, so no shard touches another's hash map.
    /// Appends are recorded as `(frontier tuple, count)` runs; every
    /// frontier tuple is owned by exactly one shard, so merging runs in
    /// ascending frontier order reproduces the serial traversal
    /// byte-for-byte.
    ///
    /// Budgeting: each shard stops at the full row cap on its own (the
    /// contiguous drive's shared prefix budget keys on *partition* order,
    /// which is meaningless here), so a truncating step can transiently
    /// hold up to `shards × cap` tuples; the merge truncates to the exact
    /// serial prefix. A governor stop discards the shard's mid-tuple
    /// partial run and the merge stops at the smallest stopped tuple,
    /// keeping the output a prefix of the untripped traversal.
    fn partitioned(
        &self,
        tuples: &RefArena,
        cap: usize,
        gov: Option<&Governor>,
        ctr: &mut StepCounters,
    ) -> Result<StepOut, EngineError> {
        let env = self.env;
        let Some(pool) = env.pool.as_ref() else {
            return Err(crate::op::internal(
                "partitioned join probe scheduled without a scan executor",
            ));
        };
        let ns = self.index.shard_count();
        let ntuples = tuples.len();
        #[derive(Default)]
        struct ShardRun {
            arena: RefArena,
            /// (frontier tuple, appended count) per probed tuple with
            /// output, in frontier order.
            runs: Vec<(u32, u32)>,
            /// First frontier tuple this shard did *not* fully probe
            /// (meaningful only with `gov_stop`).
            cut: u32,
            gov_stop: bool,
            ctr: StepCounters,
        }
        let slots: Vec<Mutex<ShardRun>> =
            (0..ns).map(|_| Mutex::new(ShardRun::default())).collect();
        pool.run_chunks_capped(ns, env.config.parallelism.max(1), &|k| {
            let mut out = RefArena::new(tuples.npatterns, tuples.nvars);
            let mut runs: Vec<(u32, u32)> = Vec::new();
            let mut caps = CapTracker::fixed(cap, gov);
            let mut gate = GovGate::new(gov);
            let mut local = StepCounters::default();
            let mut cut = ntuples as u32;
            let mut gov_stop = false;
            for t in 0..ntuples {
                if gate.tick().is_some() {
                    gov_stop = true;
                    cut = t as u32;
                    break;
                }
                let tvars = tuples.vars_of(t);
                let mut ids = [NO_VAR; 2];
                for (slot, &v) in ids.iter_mut().zip(self.bound_vars) {
                    *slot = tvars[v];
                }
                if route(pack(ids), ns) != k {
                    continue;
                }
                let before = out.len();
                let stop =
                    self.probe_into(tuples, t, None, Some(k), &mut out, &mut caps, &mut local);
                if stop && caps.gov_stop {
                    // Discard the mid-tuple partial append run: the merge
                    // then cuts at a clean tuple boundary.
                    out.truncate(before);
                    gov_stop = true;
                    cut = t as u32;
                    break;
                }
                if out.len() > before {
                    runs.push((t as u32, (out.len() - before) as u32));
                }
                if stop {
                    // Row cap reached: later runs of this shard are never
                    // needed — by the time the merge would reach them, the
                    // appends recorded before them already fill the cap.
                    break;
                }
            }
            *crate::op::lock_clean(&slots[k]) = ShardRun {
                arena: out,
                runs,
                cut,
                gov_stop,
                ctr: local,
            };
        })
        .map_err(worker_panic)?;
        let shards: Vec<ShardRun> = slots.into_iter().map(crate::op::unwrap_clean).collect();
        for s in &shards {
            ctr.merge(&s.ctr);
        }
        let gov_stopped = shards.iter().any(|s| s.gov_stop);
        let gov_cut: u32 = shards
            .iter()
            .filter(|s| s.gov_stop)
            .map(|s| s.cut)
            .min()
            .unwrap_or(u32::MAX);
        let mut merged = RefArena::new(tuples.npatterns, tuples.nvars);
        let mut ridx = vec![0usize; ns];
        let mut consumed = vec![0usize; ns];
        loop {
            // Next run in frontier order: each tuple is owned by one
            // shard, so the smallest head across shards is the serial
            // successor.
            let mut best: Option<(u32, usize)> = None;
            for (k, s) in shards.iter().enumerate() {
                if let Some(&(t, _)) = s.runs.get(ridx[k]) {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, k));
                    }
                }
            }
            let Some((t, k)) = best else { break };
            if t >= gov_cut {
                break;
            }
            let count = shards[k].runs[ridx[k]].1 as usize;
            let take = count.min(cap - merged.len());
            merged.append_range(&shards[k].arena, consumed[k], take);
            consumed[k] += count;
            ridx[k] += 1;
            if merged.len() >= cap {
                break;
            }
        }
        Ok(StepOut {
            truncated: !gov_stopped && merged.len() >= cap,
            complete: !gov_stopped,
            arena: merged,
        })
    }
}

/// Temporal verification of the ref join, reading only the time columns.
fn temporal_ok_refs(
    a: &AnalyzedMultievent,
    parts: &PartTable<'_>,
    i: usize,
    r: EventRef,
    tuples: &RefArena,
    t: usize,
) -> bool {
    let events = tuples.events_of(t);
    for rel in &a.temporal {
        let (l, rt, bound) = match &rel.op {
            TemporalOp::Before(b) => (rel.left, rel.right, b),
            // (after is before with sides swapped)
            TemporalOp::After(b) => (rel.right, rel.left, b),
        };
        let (left_end, right_start) = if l == i && events[rt] != NO_REF {
            (parts.end(r), parts.start(events[rt]))
        } else if rt == i && events[l] != NO_REF {
            (parts.end(events[l]), parts.start(r))
        } else {
            continue;
        };
        if left_end > right_start {
            return false;
        }
        if let Some(b) = bound {
            if (right_start - left_end) > *b {
                return false;
            }
        }
    }
    true
}

/// The seed's materializing join (kept intact for the ablation benches):
/// candidates are full events and the frontier clones them per tuple. The
/// governor integrates the same way as [`join_refs`] — deterministic row
/// caps from the memory budget, per-tuple deadline/cancel polls, partial
/// mode completing the preserved prefix ungoverned.
fn join_events(
    env: &ExecEnv<'_>,
    candidates: Vec<Vec<Event>>,
) -> Result<(Vec<Tuple>, JoinRun), EngineError> {
    let a = env.a;
    let n = a.patterns.len();
    let nvars = a.vars.len();
    // Frontier footprint estimate per tuple: the inline options (each
    // tuple also owns two Vec headers, which this deliberately ignores —
    // the accounting tracks the dominant payload).
    let tuple_bytes = (n * std::mem::size_of::<Option<Event>>()
        + nvars * std::mem::size_of::<Option<EntityId>>()) as u64;
    let mut gov = env.gov();
    let sizes: Vec<usize> = candidates.iter().map(Vec::len).collect();
    let join_order = plan_join_order(a, &sizes);

    let mut tuples: Vec<Tuple> = vec![Tuple {
        events: vec![None; n],
        vars: vec![None; nvars],
    }];
    let mut run = JoinRun {
        fanout: 1,
        ..JoinRun::default()
    };

    for &i in &join_order {
        let p = &a.patterns[i];
        let events = &candidates[i];
        // Vars of this pattern, deduped (subject may equal object).
        let pattern_vars: Vec<usize> = if p.subject == p.object {
            vec![p.subject]
        } else {
            vec![p.subject, p.object]
        };
        let mut next: Vec<Tuple> = Vec::new();
        // Index events by the entity ids of vars that are already bound
        // in at least one tuple. For simplicity (and since tuples at a
        // given step share the same bound-var set), use the first tuple
        // as the prototype.
        let proto_bound: Vec<usize> = pattern_vars
            .iter()
            .copied()
            .filter(|&v| tuples.first().map(|t| t.vars[v].is_some()).unwrap_or(false))
            .collect();
        let t_build = Instant::now();
        let mut index: HashMap<Vec<EntityId>, Vec<&Event>> = HashMap::new();
        for e in events {
            if p.subject == p.object && e.subject != e.object {
                continue;
            }
            let key: Vec<EntityId> = proto_bound
                .iter()
                .map(|&v| if v == p.subject { e.subject } else { e.object })
                .collect();
            index.entry(key).or_default().push(e);
        }
        run.build_nanos += t_build.elapsed().as_nanos() as u64;
        // Effective row cap (see `join_refs`).
        let mut cap = env.config.max_intermediate;
        let mut mem_capped = false;
        if let Some(g) = gov {
            if g.has_memory_budget() {
                let rows = (g.remaining_bytes() / tuple_bytes) as usize;
                if rows < cap {
                    cap = rows;
                    mem_capped = true;
                }
            }
        }
        let mut step_truncated = false;
        let mut gate = GovGate::new(gov);
        let t_probe = Instant::now();
        if cap == 0 {
            step_truncated = true;
        } else {
            'tuples: for t in &tuples {
                if gate.tick().is_some() {
                    break 'tuples;
                }
                let mut key: Vec<EntityId> = Vec::with_capacity(proto_bound.len());
                for &v in proto_bound.iter() {
                    match t.vars[v] {
                        Some(id) => key.push(id),
                        None => {
                            return Err(crate::op::internal(
                                "prototype variable unbound during join probe",
                            ))
                        }
                    }
                }
                let Some(matches) = index.get(&key) else {
                    continue;
                };
                for e in matches {
                    if !temporal_ok(a, i, e, t) {
                        continue;
                    }
                    let mut nt = t.clone();
                    nt.events[i] = Some(**e);
                    nt.vars[p.subject] = Some(e.subject);
                    nt.vars[p.object] = Some(e.object);
                    next.push(nt);
                    if next.len() >= cap {
                        step_truncated = true;
                        break 'tuples;
                    }
                }
            }
        }
        run.probe_nanos += t_probe.elapsed().as_nanos() as u64;
        let prev_bytes = tuples.len() as u64 * tuple_bytes;
        tuples = next;
        if let Some(g) = gov {
            g.uncharge(prev_bytes);
            let _ = g.charge(tuples.len() as u64 * tuple_bytes);
            if mem_capped && step_truncated {
                g.record(Trip::Memory);
            }
            if let Some(t) = g.trip() {
                if !g.partial() {
                    return Err(g.error(t));
                }
                gov = None;
            } else {
                run.truncated |= step_truncated;
            }
        } else {
            run.truncated |= step_truncated;
        }
        if tuples.is_empty() {
            return Ok((tuples, run));
        }
    }
    Ok((tuples, run))
}

/// Verifies every temporal relationship between pattern `i`'s candidate
/// event and the events already placed in the tuple.
fn temporal_ok(a: &AnalyzedMultievent, i: usize, e: &Event, t: &Tuple) -> bool {
    for rel in &a.temporal {
        let (l, r, bound) = match &rel.op {
            TemporalOp::Before(b) => (rel.left, rel.right, b),
            // (after is before with sides swapped)
            TemporalOp::After(b) => (rel.right, rel.left, b),
        };
        let (left_event, right_event) = if l == i {
            let Some(right) = t.events[r] else { continue };
            (*e, right)
        } else if r == i {
            let Some(left) = t.events[l] else { continue };
            (left, *e)
        } else {
            continue;
        };
        if left_event.end_time > right_event.start_time {
            return false;
        }
        if let Some(b) = bound {
            if (right_event.start_time - left_event.end_time) > *b {
                return false;
            }
        }
    }
    true
}
