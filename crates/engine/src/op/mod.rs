//! The physical operator pipeline.
//!
//! A multievent query executes as an explicit operator tree instead of one
//! fused scan-and-join loop:
//!
//! ```text
//! Project / Aggregate
//! └── TemporalJoin                     (multi-way hash join, parallel)
//!     ├── PatternScan #1 ── SemiJoinNarrow #1
//!     ├── PatternScan #2 ── SemiJoinNarrow #2
//!     └── …one chain per pattern, in schedule order
//! ```
//!
//! Every operator implements the uniform [`Operator`] interface over
//! [`EventRef`] batches: it reads and writes the shared [`PipelineState`]
//! (candidate batches, binding sets, time statistics, the tuple frontier)
//! and reports its tuple in/out counts. The driver ([`crate::exec`])
//! executes the tree post-order, timing each node into
//! [`ExecStats::ops`]; `EXPLAIN` renders the same tree shape, so what is
//! shown is what runs.
//!
//! Operator execution order is the dataflow order of the old fused loop —
//! for each scheduled pattern, narrow then scan; then join; then project —
//! so every result is byte-identical to the pre-operator pipeline. The
//! seed's materializing path (`EngineConfig::late_materialization = false`)
//! runs through the same tree with `Event` batches.

pub mod join;
pub mod project;
pub mod scan;
pub mod semi_join;

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use aiql_model::{EntityId, Event, Timestamp};
use aiql_storage::{EventFilter, EventStore, IdSet, Partition, PartitionKey};

use crate::analyze::AnalyzedMultievent;
use crate::engine::EngineConfig;
use crate::error::EngineError;
use crate::governor::Governor;
use crate::pool::{PoolPanic, ScanPool};
use crate::result::ResultTable;
use crate::schedule::PlanCtx;

pub use join::TemporalJoin;
pub use project::Project;
pub use scan::PatternScan;
pub use semi_join::SemiJoinNarrow;

/// One candidate match: an event per pattern plus the implied variable
/// bindings.
#[derive(Debug, Clone)]
pub struct Tuple {
    /// Event per pattern, in source order.
    pub events: Vec<Option<Event>>,
    /// Entity binding per variable.
    pub vars: Vec<Option<EntityId>>,
}

/// A row reference: index into the query's partition table plus the flat
/// row inside that partition's segment run. 8 bytes instead of the 56-byte
/// `Event`. Segment compaction preserves flat row addresses, so refs stay
/// valid across layout rewrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventRef {
    /// Index into [`PartTable::keys`].
    pub part: u32,
    /// Flat row inside the partition.
    pub row: u32,
}

/// Sentinel for "no event placed for this pattern yet".
pub(crate) const NO_REF: EventRef = EventRef {
    part: u32::MAX,
    row: u32::MAX,
};

/// Sentinel for "variable unbound" in the arena's binding columns
/// (entity ids are dense store indices, nowhere near `u32::MAX`).
pub(crate) const NO_VAR: u32 = u32::MAX;

/// Intermediate tuples of the late-materialization join, stored as two flat
/// arrays with fixed strides (`npatterns` refs + `nvars` bindings per
/// tuple). Growing the frontier copies plain `u32`/8-byte rows — no
/// per-tuple heap allocation, unlike the materializing join's
/// `Vec<Option<Event>>` clones.
#[derive(Debug, Default)]
pub struct RefArena {
    pub(crate) npatterns: usize,
    pub(crate) nvars: usize,
    pub(crate) events: Vec<EventRef>,
    pub(crate) vars: Vec<u32>,
}

impl RefArena {
    pub(crate) fn new(npatterns: usize, nvars: usize) -> Self {
        RefArena {
            npatterns,
            nvars,
            events: Vec::new(),
            vars: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        // Queries always bind at least one variable, but keep the
        // degenerate nvars == 0 case well-defined.
        self.vars
            .len()
            .checked_div(self.nvars)
            .unwrap_or_else(|| usize::from(!self.events.is_empty()))
    }

    pub(crate) fn events_of(&self, i: usize) -> &[EventRef] {
        &self.events[i * self.npatterns..(i + 1) * self.npatterns]
    }

    pub(crate) fn vars_of(&self, i: usize) -> &[u32] {
        &self.vars[i * self.nvars..(i + 1) * self.nvars]
    }

    /// Appends a copy of tuple `i` of `src`, returning the new tuple index.
    pub(crate) fn push_from(&mut self, src: &RefArena, i: usize) -> usize {
        self.events.extend_from_slice(src.events_of(i));
        self.vars.extend_from_slice(src.vars_of(i));
        self.len() - 1
    }

    /// Appends up to `limit` leading tuples of `src` (the deterministic
    /// partial-frontier merge of the parallel join).
    pub(crate) fn append_prefix(&mut self, src: &RefArena, limit: usize) {
        let take = src.len().min(limit);
        self.events
            .extend_from_slice(&src.events[..take * self.npatterns]);
        self.vars.extend_from_slice(&src.vars[..take * self.nvars]);
    }

    pub(crate) fn set_event(&mut self, i: usize, pattern: usize, r: EventRef) {
        self.events[i * self.npatterns + pattern] = r;
    }

    pub(crate) fn set_var(&mut self, i: usize, var: usize, id: EntityId) {
        self.vars[i * self.nvars + var] = id.raw();
    }
}

/// Snapshot of the store's partitions for one query: the address space
/// [`EventRef`]s resolve against. Keys are ascending (the store's partition
/// order), so a sorted key lookup gives the partition index.
pub struct PartTable<'a> {
    pub(crate) keys: Vec<PartitionKey>,
    pub(crate) parts: Vec<&'a Partition>,
}

impl<'a> PartTable<'a> {
    pub(crate) fn build(store: &'a EventStore) -> Self {
        let keys = store.partition_list();
        let parts = keys
            .iter()
            .map(|&k| store.partition(k).expect("listed partition exists"))
            .collect();
        PartTable { keys, parts }
    }

    #[inline]
    pub(crate) fn index_of(&self, key: PartitionKey) -> u32 {
        self.keys
            .binary_search(&key)
            .expect("partition key in table") as u32
    }

    #[inline]
    pub(crate) fn part(&self, r: EventRef) -> &'a Partition {
        self.parts[r.part as usize]
    }

    #[inline]
    pub(crate) fn subject(&self, r: EventRef) -> EntityId {
        self.part(r).subject_at(r.row)
    }

    #[inline]
    pub(crate) fn object(&self, r: EventRef) -> EntityId {
        self.part(r).object_at(r.row)
    }

    #[inline]
    pub(crate) fn start(&self, r: EventRef) -> Timestamp {
        self.part(r).start_at(r.row)
    }

    #[inline]
    pub(crate) fn end(&self, r: EventRef) -> Timestamp {
        self.part(r).end_at(r.row)
    }

    /// Materializes the referenced event (the single materialization point
    /// of the late path).
    #[inline]
    pub(crate) fn event(&self, r: EventRef) -> Event {
        self.part(r)
            .event_at(self.keys[r.part as usize].agent, r.row as usize)
    }
}

/// A per-pattern candidate batch, in the representation of the active data
/// path: row references (late materialization) or copied events (the
/// seed's path, kept for ablation).
#[derive(Debug)]
pub enum Batch {
    /// ⟨partition, row⟩ references (resolved against the [`PartTable`]).
    Refs(Vec<EventRef>),
    /// Materialized events.
    Events(Vec<Event>),
}

impl Batch {
    pub(crate) fn len(&self) -> usize {
        match self {
            Batch::Refs(v) => v.len(),
            Batch::Events(v) => v.len(),
        }
    }
}

/// The joined tuple frontier, in the active data-path representation.
#[derive(Debug)]
pub enum Frontier {
    /// Flat ref arena (late materialization).
    Refs(RefArena),
    /// Materialized tuples.
    Events(Vec<Tuple>),
}

impl Frontier {
    pub(crate) fn len(&self) -> usize {
        match self {
            Frontier::Refs(a) => a.len(),
            Frontier::Events(t) => t.len(),
        }
    }
}

/// Read-only execution environment of one query: everything the operators
/// share and never mutate.
pub struct ExecEnv<'a> {
    pub store: &'a EventStore,
    pub a: &'a AnalyzedMultievent,
    pub config: &'a EngineConfig,
    /// Persistent scan executor (None = scoped-thread fan-out, the
    /// ablation baseline).
    pub pool: Option<Arc<ScanPool>>,
    /// The compiled shared phase: resolved vars, base filters, schedule.
    pub ctx: PlanCtx,
    /// The partition address space of this execution.
    pub parts: PartTable<'a>,
    /// The query governor (deadline, cancellation, memory budget), shared
    /// by every thread working on this query. `None` = ungoverned: every
    /// check compiles to a no-op branch.
    pub governor: Option<Arc<Governor>>,
}

impl ExecEnv<'_> {
    /// The governor, borrowed for the hot loops.
    #[inline]
    pub(crate) fn gov(&self) -> Option<&Governor> {
        self.governor.as_deref()
    }
}

/// A caught worker panic, surfaced to the owning query as a structured
/// error (the pool and its workers stay healthy).
pub(crate) fn worker_panic(p: PoolPanic) -> EngineError {
    EngineError::WorkerPanic { message: p.message }
}

/// A broken engine invariant, surfaced as a structured
/// [`EngineError::Internal`] instead of a panic: the query unwinds cleanly
/// and the sessions sharing the process keep running.
pub(crate) fn internal(message: impl Into<String>) -> EngineError {
    EngineError::Internal {
        message: message.into(),
    }
}

/// Locks a per-task result slot, recovering from poisoning. A pool task
/// that panics is caught at the batch boundary and surfaced as
/// `WorkerPanic` *before* any partial data behind the lock is consumed, so
/// recovery here can never leak a half-written result — it only avoids a
/// secondary panic while the query unwinds.
pub(crate) fn lock_clean<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`lock_clean`] for consuming the slot after the batch completed.
pub(crate) fn unwrap_clean<T>(m: std::sync::Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(|e| e.into_inner())
}

/// Mutable dataflow state threaded through the operator tree.
pub struct PipelineState {
    /// Candidate batch per pattern (source order), filled by the scans.
    pub candidates: Vec<Option<Batch>>,
    /// Bound entity-id sets per variable (semi-join pushdown).
    pub bound: HashMap<usize, IdSet>,
    /// (min_start, max_start, min_end, max_end) per executed pattern.
    pub time_stats: Vec<Option<(i64, i64, i64, i64)>>,
    /// The narrowed filter staged by [`SemiJoinNarrow`] for its parent
    /// [`PatternScan`].
    pub narrowed: Option<EventFilter>,
    /// The joined tuple frontier (written by [`TemporalJoin`]).
    pub frontier: Frontier,
    /// Whether the join hit `max_intermediate`.
    pub truncated: bool,
    /// Short-circuit: a pattern produced no candidates (or was proven
    /// unsatisfiable), so every later operator no-ops.
    pub done: bool,
    /// Execution statistics, accumulated per operator by the driver.
    pub stats: ExecStats,
    /// The final result table (written by [`Project`]).
    pub table: Option<ResultTable>,
}

impl PipelineState {
    pub(crate) fn new(a: &AnalyzedMultievent, order: &[usize], late: bool) -> Self {
        let n = a.patterns.len();
        PipelineState {
            candidates: (0..n).map(|_| None).collect(),
            bound: HashMap::new(),
            time_stats: vec![None; n],
            narrowed: None,
            frontier: if late {
                Frontier::Refs(RefArena::new(n, a.vars.len()))
            } else {
                Frontier::Events(Vec::new())
            },
            truncated: false,
            done: false,
            stats: ExecStats {
                fetched: vec![0; n],
                order: order.to_vec(),
                tuples: 0,
                ops: Vec::new(),
            },
            table: None,
        }
    }
}

/// Statistics of one execution, surfaced for benches and ablations.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Events fetched per pattern (source order).
    pub fetched: Vec<usize>,
    /// Pattern execution order used.
    pub order: Vec<usize>,
    /// Final joined tuple count.
    pub tuples: usize,
    /// Per-operator timings and tuple in/out counts, in execution order.
    pub ops: Vec<OpStat>,
}

/// One operator's contribution to [`ExecStats`].
#[derive(Debug, Clone)]
pub struct OpStat {
    /// Operator kind label (`PatternScan`, `SemiJoinNarrow`,
    /// `TemporalJoin`, `Project`, `Aggregate`).
    pub kind: &'static str,
    /// Pattern index (source order) for per-pattern operators.
    pub pattern: Option<usize>,
    /// Wall time spent inside the operator (at least 1ns once it ran).
    pub nanos: u64,
    /// Tuples the operator consumed.
    pub rows_in: usize,
    /// Tuples the operator produced.
    pub rows_out: usize,
    /// Parallel fan-out used (1 = serial).
    pub fanout: usize,
    /// Hash-index build time (joins only, 0 elsewhere): nanoseconds spent
    /// building the per-step candidate indexes, summed over join steps.
    pub build_nanos: u64,
    /// Probe time (joins only, 0 elsewhere): nanoseconds spent driving the
    /// frontier through the indexes, summed over join steps.
    pub probe_nanos: u64,
}

/// Tuple in/out accounting returned by each operator run.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpIo {
    pub rows_in: usize,
    pub rows_out: usize,
    pub fanout: usize,
    /// Join-only build/probe timing split (see [`OpStat`]).
    pub build_nanos: u64,
    pub probe_nanos: u64,
}

/// The uniform physical-operator interface: one batch-oriented `run` over
/// the shared pipeline state.
pub trait Operator: std::fmt::Debug + Send + Sync {
    /// Operator kind label (matches [`OpStat::kind`] and `EXPLAIN`).
    fn kind(&self) -> &'static str;

    /// Pattern index for per-pattern operators.
    fn pattern(&self) -> Option<usize> {
        None
    }

    /// Executes the operator, reading and writing the pipeline state.
    fn run(&self, env: &ExecEnv<'_>, st: &mut PipelineState) -> Result<OpIo, EngineError>;
}

/// A node of the physical plan tree.
pub struct PlanNode {
    pub op: Box<dyn Operator>,
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Executes the subtree post-order (children feed parents), timing
    /// every operator into [`ExecStats::ops`].
    pub fn execute(&self, env: &ExecEnv<'_>, st: &mut PipelineState) -> Result<(), EngineError> {
        for child in &self.children {
            child.execute(env, st)?;
        }
        let t0 = Instant::now();
        let io = self.op.run(env, st)?;
        st.stats.ops.push(OpStat {
            kind: self.op.kind(),
            pattern: self.op.pattern(),
            // Clamp to 1ns: "ran, under the clock's resolution" must stay
            // distinguishable from "never ran".
            nanos: (t0.elapsed().as_nanos() as u64).max(1),
            rows_in: io.rows_in,
            rows_out: io.rows_out,
            fanout: io.fanout.max(1),
            build_nanos: io.build_nanos,
            probe_nanos: io.probe_nanos,
        });
        Ok(())
    }
}

/// Builds the join subtree: one `SemiJoinNarrow → PatternScan` chain per
/// pattern in schedule order, feeding the `TemporalJoin`.
pub fn join_tree(order: &[usize]) -> PlanNode {
    let scans = order
        .iter()
        .map(|&i| PlanNode {
            op: Box::new(PatternScan::new(i)),
            children: vec![PlanNode {
                op: Box::new(SemiJoinNarrow::new(i)),
                children: Vec::new(),
            }],
        })
        .collect();
    PlanNode {
        op: Box::new(TemporalJoin::new()),
        children: scans,
    }
}

/// Builds the full query tree: `Project`/`Aggregate` over the join subtree.
pub fn query_tree(a: &AnalyzedMultievent, order: &[usize]) -> PlanNode {
    let aggregated = !project::collect_aggs(a).is_empty() || !a.group_by.is_empty();
    PlanNode {
        op: Box::new(Project::new(aggregated)),
        children: vec![join_tree(order)],
    }
}
