//! The physical operator pipeline.
//!
//! A multievent query executes as an explicit operator tree instead of one
//! fused scan-and-join loop:
//!
//! ```text
//! Project / Aggregate
//! └── TemporalJoin                     (multi-way hash join, parallel)
//!     ├── PatternScan #1 ── SemiJoinNarrow #1
//!     ├── PatternScan #2 ── SemiJoinNarrow #2
//!     └── …one chain per pattern, in schedule order
//! ```
//!
//! Every operator implements the uniform [`Operator`] interface over
//! [`EventRef`] batches: it reads and writes the shared [`PipelineState`]
//! (candidate batches, binding sets, time statistics, the tuple frontier)
//! and reports its tuple in/out counts. The driver ([`crate::exec`])
//! executes the tree post-order, timing each node into
//! [`ExecStats::ops`]; `EXPLAIN` renders the same tree shape, so what is
//! shown is what runs.
//!
//! Operator execution order is the dataflow order of the old fused loop —
//! for each scheduled pattern, narrow then scan; then join; then project —
//! so every result is byte-identical to the pre-operator pipeline. The
//! seed's materializing path (`EngineConfig::late_materialization = false`)
//! runs through the same tree with `Event` batches.

pub mod join;
pub mod project;
pub mod scan;
pub mod semi_join;

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use aiql_model::{EntityId, Event, Timestamp};
use aiql_storage::{EventFilter, EventStore, IdSet, Partition, PartitionKey};

use crate::analyze::AnalyzedMultievent;
use crate::engine::EngineConfig;
use crate::error::EngineError;
use crate::governor::Governor;
use crate::pool::{PoolPanic, ScanPool};
use crate::result::ResultTable;
use crate::schedule::PlanCtx;

pub use join::TemporalJoin;
pub use project::Project;
pub use scan::PatternScan;
pub use semi_join::SemiJoinNarrow;

/// One candidate match: an event per pattern plus the implied variable
/// bindings.
#[derive(Debug, Clone)]
pub struct Tuple {
    /// Event per pattern, in source order.
    pub events: Vec<Option<Event>>,
    /// Entity binding per variable.
    pub vars: Vec<Option<EntityId>>,
}

/// A row reference: index into the query's partition table plus the flat
/// row inside that partition's segment run. 8 bytes instead of the 56-byte
/// `Event`. Segment compaction preserves flat row addresses, so refs stay
/// valid across layout rewrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventRef {
    /// Index into [`PartTable::keys`].
    pub part: u32,
    /// Flat row inside the partition.
    pub row: u32,
}

/// Sentinel for "no event placed for this pattern yet".
pub(crate) const NO_REF: EventRef = EventRef {
    part: u32::MAX,
    row: u32::MAX,
};

/// Sentinel for "variable unbound" in the arena's binding columns
/// (entity ids are dense store indices, nowhere near `u32::MAX`).
pub(crate) const NO_VAR: u32 = u32::MAX;

/// Intermediate tuples of the late-materialization join, stored as two flat
/// arrays with fixed strides (`npatterns` refs + `nvars` bindings per
/// tuple). Growing the frontier copies plain `u32`/8-byte rows — no
/// per-tuple heap allocation, unlike the materializing join's
/// `Vec<Option<Event>>` clones.
#[derive(Debug, Default)]
pub struct RefArena {
    pub(crate) npatterns: usize,
    pub(crate) nvars: usize,
    pub(crate) events: Vec<EventRef>,
    pub(crate) vars: Vec<u32>,
    /// Tuple count, maintained by every mutator: `len()` sits on the join's
    /// per-emission path, where a `vars.len() / nvars` division is
    /// measurable across millions of appended tuples.
    ntuples: usize,
}

impl RefArena {
    pub(crate) fn new(npatterns: usize, nvars: usize) -> Self {
        RefArena {
            npatterns,
            nvars,
            events: Vec::new(),
            vars: Vec::new(),
            ntuples: 0,
        }
    }

    /// An empty arena with room for `tuples` rows. Large reservations are
    /// lazy virtual pages until touched, while skipping the doubling-growth
    /// recopies that a cap-sized frontier pays for otherwise (~one extra
    /// full-arena memcpy per join step).
    pub(crate) fn with_capacity_tuples(npatterns: usize, nvars: usize, tuples: usize) -> Self {
        let mut a = RefArena::new(npatterns, nvars);
        a.events.reserve(tuples * npatterns);
        a.vars.reserve(tuples * nvars);
        a
    }

    pub(crate) fn len(&self) -> usize {
        self.ntuples
    }

    pub(crate) fn events_of(&self, i: usize) -> &[EventRef] {
        &self.events[i * self.npatterns..(i + 1) * self.npatterns]
    }

    pub(crate) fn vars_of(&self, i: usize) -> &[u32] {
        &self.vars[i * self.nvars..(i + 1) * self.nvars]
    }

    /// Appends tuple `i` of `src` extended with one placed event: the new
    /// pattern ref and both its variable bindings land in a single pass —
    /// the join's per-match emission, fused so the copied row is patched
    /// in place instead of re-indexed per field.
    #[inline]
    pub(crate) fn push_extended(
        &mut self,
        src: &RefArena,
        i: usize,
        pattern: usize,
        r: EventRef,
        subject: (usize, EntityId),
        object: (usize, EntityId),
    ) {
        let e0 = self.events.len();
        self.events.extend_from_slice(src.events_of(i));
        self.events[e0 + pattern] = r;
        let v0 = self.vars.len();
        self.vars.extend_from_slice(src.vars_of(i));
        self.vars[v0 + subject.0] = subject.1.raw();
        self.vars[v0 + object.0] = object.1.raw();
        self.ntuples += 1;
    }

    /// Appends up to `limit` leading tuples of `src` (the deterministic
    /// partial-frontier merge of the parallel join).
    pub(crate) fn append_prefix(&mut self, src: &RefArena, limit: usize) {
        let take = src.len().min(limit);
        self.events
            .extend_from_slice(&src.events[..take * self.npatterns]);
        self.vars.extend_from_slice(&src.vars[..take * self.nvars]);
        self.ntuples += take;
    }

    /// Appends `count` tuples of `src` starting at tuple `from` (the
    /// run-at-a-time merge of the key-partitioned join drive).
    pub(crate) fn append_range(&mut self, src: &RefArena, from: usize, count: usize) {
        self.events
            .extend_from_slice(&src.events[from * self.npatterns..(from + count) * self.npatterns]);
        self.vars
            .extend_from_slice(&src.vars[from * self.nvars..(from + count) * self.nvars]);
        self.ntuples += count;
    }

    /// Drops every tuple past the first `len` (discarding a mid-tuple
    /// partial append run after a governor stop).
    pub(crate) fn truncate(&mut self, len: usize) {
        self.events.truncate(len * self.npatterns);
        self.vars.truncate(len * self.nvars);
        self.ntuples = self.ntuples.min(len);
    }

    /// Resizes to exactly `len` tuples, filling new rows with unplaced
    /// sentinels (the join's proto-tuple seed).
    pub(crate) fn resize_tuples(&mut self, len: usize) {
        self.events.resize(len * self.npatterns, NO_REF);
        self.vars.resize(len * self.nvars, NO_VAR);
        self.ntuples = len;
    }
}

/// Snapshot of the store's partitions for one query: the address space
/// [`EventRef`]s resolve against. Keys are ascending (the store's partition
/// order), so a sorted key lookup gives the partition index.
pub struct PartTable<'a> {
    pub(crate) keys: Vec<PartitionKey>,
    pub(crate) parts: Vec<&'a Partition>,
}

impl<'a> PartTable<'a> {
    pub(crate) fn build(store: &'a EventStore) -> Self {
        let keys = store.partition_list();
        let parts = keys
            .iter()
            .map(|&k| store.partition(k).expect("listed partition exists"))
            .collect();
        PartTable { keys, parts }
    }

    #[inline]
    pub(crate) fn index_of(&self, key: PartitionKey) -> u32 {
        self.keys
            .binary_search(&key)
            .expect("partition key in table") as u32
    }

    #[inline]
    pub(crate) fn part(&self, r: EventRef) -> &'a Partition {
        self.parts[r.part as usize]
    }

    #[inline]
    pub(crate) fn subject(&self, r: EventRef) -> EntityId {
        self.part(r).subject_at(r.row)
    }

    #[inline]
    pub(crate) fn object(&self, r: EventRef) -> EntityId {
        self.part(r).object_at(r.row)
    }

    #[inline]
    pub(crate) fn start(&self, r: EventRef) -> Timestamp {
        self.part(r).start_at(r.row)
    }

    #[inline]
    pub(crate) fn end(&self, r: EventRef) -> Timestamp {
        self.part(r).end_at(r.row)
    }

    /// Both time columns in micros, resolving the owning segment once (the
    /// join-index build reads start and end for every candidate).
    #[inline]
    pub(crate) fn start_end(&self, r: EventRef) -> (i64, i64) {
        let (s, e) = self.part(r).start_end_at(r.row);
        (s.micros(), e.micros())
    }

    /// Both entity columns, resolving the owning segment once (the join
    /// emission binds subject and object for every appended tuple).
    #[inline]
    pub(crate) fn subject_object(&self, r: EventRef) -> (EntityId, EntityId) {
        self.part(r).subject_object_at(r.row)
    }

    /// Materializes the referenced event (the single materialization point
    /// of the late path).
    #[inline]
    pub(crate) fn event(&self, r: EventRef) -> Event {
        self.part(r)
            .event_at(self.keys[r.part as usize].agent, r.row as usize)
    }
}

/// A per-pattern candidate batch, in the representation of the active data
/// path: row references (late materialization) or copied events (the
/// seed's path, kept for ablation).
#[derive(Debug)]
pub enum Batch {
    /// ⟨partition, row⟩ references (resolved against the [`PartTable`]).
    Refs(Vec<EventRef>),
    /// Materialized events.
    Events(Vec<Event>),
}

impl Batch {
    pub(crate) fn len(&self) -> usize {
        match self {
            Batch::Refs(v) => v.len(),
            Batch::Events(v) => v.len(),
        }
    }
}

/// The joined tuple frontier, in the active data-path representation.
#[derive(Debug)]
pub enum Frontier {
    /// Flat ref arena (late materialization).
    Refs(RefArena),
    /// Materialized tuples.
    Events(Vec<Tuple>),
}

impl Frontier {
    pub(crate) fn len(&self) -> usize {
        match self {
            Frontier::Refs(a) => a.len(),
            Frontier::Events(t) => t.len(),
        }
    }
}

/// Read-only execution environment of one query: everything the operators
/// share and never mutate.
pub struct ExecEnv<'a> {
    pub store: &'a EventStore,
    pub a: &'a AnalyzedMultievent,
    pub config: &'a EngineConfig,
    /// Persistent scan executor (None = scoped-thread fan-out, the
    /// ablation baseline).
    pub pool: Option<Arc<ScanPool>>,
    /// The compiled shared phase: resolved vars, base filters, schedule.
    pub ctx: PlanCtx,
    /// The partition address space of this execution.
    pub parts: PartTable<'a>,
    /// The query governor (deadline, cancellation, memory budget), shared
    /// by every thread working on this query. `None` = ungoverned: every
    /// check compiles to a no-op branch.
    pub governor: Option<Arc<Governor>>,
}

impl ExecEnv<'_> {
    /// The governor, borrowed for the hot loops.
    #[inline]
    pub(crate) fn gov(&self) -> Option<&Governor> {
        self.governor.as_deref()
    }
}

/// A caught worker panic, surfaced to the owning query as a structured
/// error (the pool and its workers stay healthy).
pub(crate) fn worker_panic(p: PoolPanic) -> EngineError {
    EngineError::WorkerPanic { message: p.message }
}

/// A broken engine invariant, surfaced as a structured
/// [`EngineError::Internal`] instead of a panic: the query unwinds cleanly
/// and the sessions sharing the process keep running.
pub(crate) fn internal(message: impl Into<String>) -> EngineError {
    EngineError::Internal {
        message: message.into(),
    }
}

/// Locks a per-task result slot, recovering from poisoning. A pool task
/// that panics is caught at the batch boundary and surfaced as
/// `WorkerPanic` *before* any partial data behind the lock is consumed, so
/// recovery here can never leak a half-written result — it only avoids a
/// secondary panic while the query unwinds.
pub(crate) fn lock_clean<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`lock_clean`] for consuming the slot after the batch completed.
pub(crate) fn unwrap_clean<T>(m: std::sync::Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(|e| e.into_inner())
}

/// Mutable dataflow state threaded through the operator tree.
pub struct PipelineState {
    /// Candidate batch per pattern (source order), filled by the scans.
    pub candidates: Vec<Option<Batch>>,
    /// Bound entity-id sets per variable (semi-join pushdown).
    pub bound: HashMap<usize, IdSet>,
    /// Sideways join-key filters per pattern (source order): the
    /// ⟨subject-domain, object-domain⟩ bitmap pair over the pattern's scan
    /// candidates, published by [`PatternScan`] when
    /// `EngineConfig::sideways_filters` is on (late path only) and consumed
    /// by [`TemporalJoin`] to prune build sides, skip doomed probes, and
    /// shrink the seed frontier.
    pub domains: Vec<Option<(IdSet, IdSet)>>,
    /// (min_start, max_start, min_end, max_end) per executed pattern.
    pub time_stats: Vec<Option<(i64, i64, i64, i64)>>,
    /// The narrowed filter staged by [`SemiJoinNarrow`] for its parent
    /// [`PatternScan`].
    pub narrowed: Option<EventFilter>,
    /// The joined tuple frontier (written by [`TemporalJoin`]).
    pub frontier: Frontier,
    /// Whether the join hit `max_intermediate`.
    pub truncated: bool,
    /// Short-circuit: a pattern produced no candidates (or was proven
    /// unsatisfiable), so every later operator no-ops.
    pub done: bool,
    /// Execution statistics, accumulated per operator by the driver.
    pub stats: ExecStats,
    /// The final result table (written by [`Project`]).
    pub table: Option<ResultTable>,
}

impl PipelineState {
    pub(crate) fn new(a: &AnalyzedMultievent, order: &[usize], late: bool) -> Self {
        let n = a.patterns.len();
        PipelineState {
            candidates: (0..n).map(|_| None).collect(),
            bound: HashMap::new(),
            domains: vec![None; n],
            time_stats: vec![None; n],
            narrowed: None,
            frontier: if late {
                Frontier::Refs(RefArena::new(n, a.vars.len()))
            } else {
                Frontier::Events(Vec::new())
            },
            truncated: false,
            done: false,
            stats: ExecStats {
                fetched: vec![0; n],
                order: order.to_vec(),
                tuples: 0,
                ops: Vec::new(),
            },
            table: None,
        }
    }
}

/// Statistics of one execution, surfaced for benches and ablations.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Events fetched per pattern (source order).
    pub fetched: Vec<usize>,
    /// Pattern execution order used.
    pub order: Vec<usize>,
    /// Final joined tuple count.
    pub tuples: usize,
    /// Per-operator timings and tuple in/out counts, in execution order.
    pub ops: Vec<OpStat>,
}

impl ExecStats {
    /// Renders the per-operator statistics as indented text — the
    /// `EXPLAIN ANALYZE` companion of [`crate::explain`]'s static plan:
    /// what each operator actually did (timings, row flow, fan-out, and the
    /// join's per-step probe-reduction counters).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let ms = |nanos: u64| nanos as f64 / 1e6;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "executed operators ({} tuple(s) joined, order {:?}):",
            self.tuples, self.order
        );
        for op in &self.ops {
            let pattern = match op.pattern {
                Some(p) => format!(" #{p}"),
                None => String::new(),
            };
            let _ = write!(
                out,
                "  {}{} {:.3} ms | rows {} -> {} | fanout x{}",
                op.kind,
                pattern,
                ms(op.nanos),
                op.rows_in,
                op.rows_out,
                op.fanout,
            );
            if op.build_nanos > 0 || op.probe_nanos > 0 {
                let _ = write!(
                    out,
                    " | build {:.3} ms probe {:.3} ms | probe hits {} | bucket skipped {} | filter pruned {}",
                    ms(op.build_nanos),
                    ms(op.probe_nanos),
                    op.probe_hits,
                    op.bucket_skipped,
                    op.filter_pruned,
                );
            }
            if op.runs_driven > 0 {
                let _ = write!(
                    out,
                    " | runs {} | emitted {} / breadth bound {}",
                    op.runs_driven, op.emitted_tuples, op.breadth_bound_tuples,
                );
                if let Some(d) = op.early_exit_depth {
                    let _ = write!(out, " | early exit at step {d}");
                }
            }
            out.push('\n');
            for s in &op.join_steps {
                let _ = write!(
                    out,
                    "    step pattern #{}: {} candidate(s) -> {} tuple(s) | probes {} hits {} | build {:.3} ms probe {:.3} ms | fanout x{}",
                    s.pattern,
                    s.candidates,
                    s.rows_out,
                    s.probes,
                    s.probe_hits,
                    ms(s.build_nanos),
                    ms(s.probe_nanos),
                    s.fanout,
                );
                if s.buckets > 0 {
                    let _ = write!(
                        out,
                        " | {} bucket(s) x {} us, {} ref(s) bucket-skipped",
                        s.buckets, s.bucket_width_micros, s.bucket_skipped
                    );
                }
                if s.filter_pruned > 0 {
                    let _ = write!(out, " | {} filter-pruned", s.filter_pruned);
                }
                out.push('\n');
            }
        }
        out
    }
}

/// One operator's contribution to [`ExecStats`].
#[derive(Debug, Clone)]
pub struct OpStat {
    /// Operator kind label (`PatternScan`, `SemiJoinNarrow`,
    /// `TemporalJoin`, `Project`, `Aggregate`).
    pub kind: &'static str,
    /// Pattern index (source order) for per-pattern operators.
    pub pattern: Option<usize>,
    /// Wall time spent inside the operator (at least 1ns once it ran).
    pub nanos: u64,
    /// Tuples the operator consumed.
    pub rows_in: usize,
    /// Tuples the operator produced.
    pub rows_out: usize,
    /// Parallel fan-out used (1 = serial).
    pub fanout: usize,
    /// Hash-index build time (joins only, 0 elsewhere): nanoseconds spent
    /// building the per-step candidate indexes, summed over join steps.
    pub build_nanos: u64,
    /// Probe time (joins only, 0 elsewhere): nanoseconds spent driving the
    /// frontier through the indexes, summed over join steps.
    pub probe_nanos: u64,
    /// Index probes that found a non-empty posting list (joins only),
    /// summed over join steps.
    pub probe_hits: u64,
    /// Candidate refs skipped without an exact temporal check because their
    /// time-bucket chunk (or whole posting list) cannot satisfy the probe
    /// tuple's admissible interval (joins only, `time_bucket_join`).
    pub bucket_skipped: u64,
    /// Build candidates, seed tuples, and probes eliminated by sideways
    /// bitmap filters (joins only, `sideways_filters`).
    pub filter_pruned: u64,
    /// Seed runs driven to completion by the blocked join drive (joins
    /// only, `blocked_join_drive`; 0 = breadth-first drive).
    pub runs_driven: u64,
    /// Tuples actually emitted across all join steps of the merged runs
    /// (blocked drive only).
    pub emitted_tuples: u64,
    /// Tuples the breadth-first drive would have emitted for the same
    /// result — the demand-driven saving is the gap to `emitted_tuples`
    /// (blocked drive only).
    pub breadth_bound_tuples: u64,
    /// Join-order step depth at which the blocked drive stopped emitting
    /// (`None` = every run driven to completion).
    pub early_exit_depth: Option<usize>,
    /// Per-join-step detail (joins only, execution order of the steps).
    pub join_steps: Vec<JoinStepStat>,
}

/// One join step's probe-reduction accounting inside [`OpStat`] — the
/// EXPLAIN ANALYZE detail that makes probe regressions diagnosable without
/// a profiler.
#[derive(Debug, Clone, Default)]
pub struct JoinStepStat {
    /// Pattern index (source order) this step placed.
    pub pattern: usize,
    /// Candidate refs indexed (after sideways build pruning).
    pub candidates: usize,
    /// Frontier tuples after the step.
    pub rows_out: usize,
    /// Index probes attempted (after sideways probe skips).
    pub probes: u64,
    /// Probes that found a non-empty posting list.
    pub probe_hits: u64,
    /// Refs skipped by time-bucket pruning (no exact check run).
    pub bucket_skipped: u64,
    /// Candidates/seed tuples/probes eliminated by sideways filters.
    pub filter_pruned: u64,
    /// Time buckets of this step's index grid (0 = untimed index).
    pub buckets: u32,
    /// Bucket width in microseconds (0 = untimed index).
    pub bucket_width_micros: i64,
    /// Index build time of this step.
    pub build_nanos: u64,
    /// Probe time of this step.
    pub probe_nanos: u64,
    /// Probe fan-out of this step (1 = serial; key-partitioned drives fan
    /// out one task per index shard).
    pub fanout: usize,
}

/// Tuple in/out accounting returned by each operator run.
#[derive(Debug, Clone, Default)]
pub struct OpIo {
    pub rows_in: usize,
    pub rows_out: usize,
    pub fanout: usize,
    /// Join-only build/probe timing split (see [`OpStat`]).
    pub build_nanos: u64,
    pub probe_nanos: u64,
    /// Join-only probe-reduction counters (see [`OpStat`]).
    pub probe_hits: u64,
    pub bucket_skipped: u64,
    pub filter_pruned: u64,
    /// Join-only blocked-drive emission counters (see [`OpStat`]).
    pub runs_driven: u64,
    pub emitted_tuples: u64,
    pub breadth_bound_tuples: u64,
    pub early_exit_depth: Option<usize>,
    pub join_steps: Vec<JoinStepStat>,
}

/// The uniform physical-operator interface: one batch-oriented `run` over
/// the shared pipeline state.
pub trait Operator: std::fmt::Debug + Send + Sync {
    /// Operator kind label (matches [`OpStat::kind`] and `EXPLAIN`).
    fn kind(&self) -> &'static str;

    /// Pattern index for per-pattern operators.
    fn pattern(&self) -> Option<usize> {
        None
    }

    /// Executes the operator, reading and writing the pipeline state.
    fn run(&self, env: &ExecEnv<'_>, st: &mut PipelineState) -> Result<OpIo, EngineError>;
}

/// A node of the physical plan tree.
pub struct PlanNode {
    pub op: Box<dyn Operator>,
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Executes the subtree post-order (children feed parents), timing
    /// every operator into [`ExecStats::ops`].
    pub fn execute(&self, env: &ExecEnv<'_>, st: &mut PipelineState) -> Result<(), EngineError> {
        for child in &self.children {
            child.execute(env, st)?;
        }
        let t0 = Instant::now();
        let io = self.op.run(env, st)?;
        st.stats.ops.push(OpStat {
            kind: self.op.kind(),
            pattern: self.op.pattern(),
            // Clamp to 1ns: "ran, under the clock's resolution" must stay
            // distinguishable from "never ran".
            nanos: (t0.elapsed().as_nanos() as u64).max(1),
            rows_in: io.rows_in,
            rows_out: io.rows_out,
            fanout: io.fanout.max(1),
            build_nanos: io.build_nanos,
            probe_nanos: io.probe_nanos,
            probe_hits: io.probe_hits,
            bucket_skipped: io.bucket_skipped,
            filter_pruned: io.filter_pruned,
            runs_driven: io.runs_driven,
            emitted_tuples: io.emitted_tuples,
            breadth_bound_tuples: io.breadth_bound_tuples,
            early_exit_depth: io.early_exit_depth,
            join_steps: io.join_steps,
        });
        Ok(())
    }
}

/// Builds the join subtree: one `SemiJoinNarrow → PatternScan` chain per
/// pattern in schedule order, feeding the `TemporalJoin`.
pub fn join_tree(order: &[usize]) -> PlanNode {
    let scans = order
        .iter()
        .map(|&i| PlanNode {
            op: Box::new(PatternScan::new(i)),
            children: vec![PlanNode {
                op: Box::new(SemiJoinNarrow::new(i)),
                children: Vec::new(),
            }],
        })
        .collect();
    PlanNode {
        op: Box::new(TemporalJoin::new()),
        children: scans,
    }
}

/// Builds the full query tree: `Project`/`Aggregate` over the join subtree.
pub fn query_tree(a: &AnalyzedMultievent, order: &[usize]) -> PlanNode {
    let aggregated = !project::collect_aggs(a).is_empty() || !a.group_by.is_empty();
    PlanNode {
        op: Box::new(Project::new(aggregated)),
        children: vec![join_tree(order)],
    }
}
