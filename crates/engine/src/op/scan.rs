//! `PatternScan`: one pattern's data query against the partitioned store.
//!
//! Consumes the narrowed filter staged by
//! [`SemiJoinNarrow`](crate::op::SemiJoinNarrow), scans the matching
//! hypertable partitions (in parallel on the shared scan executor when the
//! scan is big enough), verifies entity kinds / residual predicates, and
//! publishes the candidate batch plus the binding sets and time statistics
//! later operators narrow with.
//!
//! Two data paths, selected by `EngineConfig::late_materialization`:
//! selection vectors become [`EventRef`] batches (default), or events are
//! copied out of the segments (the seed's path, kept for ablation).

use aiql_lang::CmpOp;
use aiql_model::{Event, Value};
use aiql_storage::{EventFilter, IdSet, PartitionKey};

use crate::error::EngineError;
use crate::eval;
use crate::op::{Batch, EventRef, ExecEnv, OpIo, Operator, PipelineState};

/// The scan operator of one pattern.
#[derive(Debug, Clone, Copy)]
pub struct PatternScan {
    pattern: usize,
}

impl PatternScan {
    pub(crate) fn new(pattern: usize) -> Self {
        PatternScan { pattern }
    }
}

impl Operator for PatternScan {
    fn kind(&self) -> &'static str {
        "PatternScan"
    }

    fn pattern(&self) -> Option<usize> {
        Some(self.pattern)
    }

    fn run(&self, env: &ExecEnv<'_>, st: &mut PipelineState) -> Result<OpIo, EngineError> {
        if st.done {
            return Ok(OpIo::default());
        }
        let a = env.a;
        let i = self.pattern;
        let p = &a.patterns[i];
        let filter = st
            .narrowed
            .take()
            .ok_or_else(|| crate::op::internal("pattern scan ran without a staged filter"))?;
        let estimate = env.ctx.plan.estimates[i];
        let parts = env.store.partitions_for(&filter);
        let fanout = if parallel_scan(env, &filter, parts.len(), estimate) {
            env.config.parallelism.max(1)
        } else {
            1
        };

        let (sub_kind, obj_kind) = (a.vars[p.subject].kind, a.vars[p.object].kind);
        let same_var = p.subject == p.object;
        let entities = env.store.entities();
        // Enforce the declared entity kinds and (without entity pushdown)
        // the per-variable attribute constraints.
        let keep = |subj: aiql_model::EntityId, obj: aiql_model::EntityId| -> bool {
            if entities.get(subj).kind() != sub_kind
                || entities.get(obj).kind() != obj_kind
                || (same_var && subj != obj)
            {
                return false;
            }
            if !env.config.entity_pushdown {
                for (var_idx, id) in [(p.subject, subj), (p.object, obj)] {
                    let entity = entities.get(id);
                    for c in &a.vars[var_idx].constraints {
                        if !entities.eval(entity, c) {
                            return false;
                        }
                    }
                }
            }
            true
        };

        let fetched;
        if env.config.late_materialization {
            let mut refs = scan_refs(env, &parts, &filter, fanout > 1)?;
            refs.retain(|&r| keep(env.parts.subject(r), env.parts.object(r)));
            fetched = refs.len();
            let batch_bytes = (fetched * std::mem::size_of::<EventRef>()) as u64;
            if let Some(io) = governed_scan_stop(env, st, batch_bytes, estimate, fanout)? {
                st.stats.fetched[i] = fetched;
                return Ok(io);
            }
            if refs.is_empty() {
                st.stats.fetched[i] = 0;
                st.done = true;
                return Ok(OpIo {
                    rows_in: estimate,
                    rows_out: 0,
                    fanout,
                    ..OpIo::default()
                });
            }
            if env.config.semi_join_pushdown || env.config.sideways_filters {
                let subj = IdSet::from_iter(refs.iter().map(|&r| env.parts.subject(r)));
                let obj = IdSet::from_iter(refs.iter().map(|&r| env.parts.object(r)));
                if env.config.semi_join_pushdown {
                    st.bound.insert(p.subject, subj.clone());
                    st.bound.insert(p.object, obj.clone());
                }
                if env.config.sideways_filters {
                    // Published sideways into the join (layer 3): the
                    // candidates' id domains prune later steps' builds and
                    // probes.
                    st.domains[i] = Some((subj, obj));
                }
            }
            let mut ts = (i64::MAX, i64::MIN, i64::MAX, i64::MIN);
            for &r in &refs {
                let (start, end) = (env.parts.start(r).micros(), env.parts.end(r).micros());
                ts.0 = ts.0.min(start);
                ts.1 = ts.1.max(start);
                ts.2 = ts.2.min(end);
                ts.3 = ts.3.max(end);
            }
            st.time_stats[i] = Some(ts);
            st.candidates[i] = Some(Batch::Refs(refs));
        } else {
            let mut events = scan_events(env, &parts, &filter, fanout > 1)?;
            events.retain(|e| keep(e.subject, e.object));
            fetched = events.len();
            let batch_bytes = (fetched * std::mem::size_of::<Event>()) as u64;
            if let Some(io) = governed_scan_stop(env, st, batch_bytes, estimate, fanout)? {
                st.stats.fetched[i] = fetched;
                return Ok(io);
            }
            if events.is_empty() {
                st.stats.fetched[i] = 0;
                st.done = true;
                return Ok(OpIo {
                    rows_in: estimate,
                    rows_out: 0,
                    fanout,
                    ..OpIo::default()
                });
            }
            if env.config.semi_join_pushdown {
                st.bound.insert(
                    p.subject,
                    IdSet::from_iter(events.iter().map(|e| e.subject)),
                );
                st.bound
                    .insert(p.object, IdSet::from_iter(events.iter().map(|e| e.object)));
            }
            let mut ts = (i64::MAX, i64::MIN, i64::MAX, i64::MIN);
            for e in &events {
                ts.0 = ts.0.min(e.start_time.micros());
                ts.1 = ts.1.max(e.start_time.micros());
                ts.2 = ts.2.min(e.end_time.micros());
                ts.3 = ts.3.max(e.end_time.micros());
            }
            st.time_stats[i] = Some(ts);
            st.candidates[i] = Some(Batch::Events(events));
        }
        st.stats.fetched[i] = fetched;
        Ok(OpIo {
            rows_in: estimate,
            rows_out: fetched,
            fanout,
            ..OpIo::default()
        })
    }
}

/// Post-scan governor step: charges the candidate batch against the memory
/// budget and resolves any sticky trip (a limit that fired before or during
/// the scan leaves the candidate list incomplete, so the operator must not
/// publish it). In error mode the trip unwinds as its `EngineError`; in
/// partial mode the pipeline short-circuits (`st.done`) — the empty table
/// is a valid prefix of the full result. `Ok(Some(io))` means stop here.
fn governed_scan_stop(
    env: &ExecEnv<'_>,
    st: &mut PipelineState,
    batch_bytes: u64,
    estimate: usize,
    fanout: usize,
) -> Result<Option<OpIo>, EngineError> {
    let Some(g) = env.gov() else {
        return Ok(None);
    };
    // Charging records a Memory trip when the budget is exceeded; the
    // single trip() read below then resolves whichever limit fired first.
    let _ = g.charge(batch_bytes);
    let Some(t) = g.trip() else {
        return Ok(None);
    };
    if !g.partial() {
        return Err(g.error(t));
    }
    st.done = true;
    Ok(Some(OpIo {
        rows_in: estimate,
        rows_out: 0,
        fanout,
        ..OpIo::default()
    }))
}

/// Whether a scan over `parts` partitions should fan out.
/// `base_estimate` is the pattern's planned match estimate — an upper
/// bound for the (possibly narrowed) `filter` actually scanned — so the
/// common small-scan case skips the per-scan partition-statistics walk
/// entirely. Only when the base estimate clears the threshold is the
/// narrowed filter re-estimated, preventing fan-out for a scan that
/// binding propagation has already shrunk to near-nothing.
fn parallel_scan(
    env: &ExecEnv<'_>,
    filter: &EventFilter,
    parts: usize,
    base_estimate: usize,
) -> bool {
    let threads = env.config.parallelism.max(1);
    if !(env.config.partition_parallel && threads > 1 && parts > 1) {
        return false;
    }
    if env.config.parallel_threshold == 0 {
        return true;
    }
    base_estimate >= env.config.parallel_threshold
        && env.store.estimate(filter) >= env.config.parallel_threshold
}

/// Runs `work(chunk_index, output_slot)` for every chunk of `keys`,
/// fanning out on the persistent pool when attached (or scoped threads
/// otherwise — the seed's per-scan spawn, kept for ablation). Outputs
/// land in chunk order, so parallel scans stay deterministic.
fn scan_chunked<T: Send>(
    env: &ExecEnv<'_>,
    keys: &[PartitionKey],
    work: impl Fn(&[PartitionKey], &mut Vec<T>) + Sync + Send,
) -> Result<Vec<T>, EngineError> {
    let threads = env.config.parallelism.max(1);
    // Chunks finer than the thread count let the pool's self-scheduling
    // balance skewed partitions.
    let chunk = keys.len().div_ceil(threads * 4).max(1);
    let groups: Vec<&[PartitionKey]> = keys.chunks(chunk).collect();
    let slots: Vec<std::sync::Mutex<Vec<T>>> = groups
        .iter()
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();
    match &env.pool {
        Some(pool) => {
            let inject = env.config.inject_scan_panic;
            // Fan-out stays capped at the engine's parallelism even when
            // the process-wide shared pool has more workers. A panicking
            // task (including the injected chaos panic) is caught on its
            // worker and surfaces as `WorkerPanic` for this query only.
            pool.run_chunks_capped(groups.len(), threads, &|i| {
                if inject {
                    panic!("injected scan panic (EngineConfig::inject_scan_panic)");
                }
                let mut out = Vec::new();
                work(groups[i], &mut out);
                *crate::op::lock_clean(&slots[i]) = out;
            })
            .map_err(crate::op::worker_panic)?;
        }
        None => {
            let work = &work;
            std::thread::scope(|s| {
                let per = groups.len().div_ceil(threads).max(1);
                for (slot_group, group_group) in slots.chunks(per).zip(groups.chunks(per)) {
                    s.spawn(move || {
                        for (slot, group) in slot_group.iter().zip(group_group) {
                            let mut out = Vec::new();
                            work(group, &mut out);
                            *crate::op::lock_clean(slot) = out;
                        }
                    });
                }
            });
        }
    }
    let mut out = Vec::new();
    for slot in slots {
        out.append(&mut crate::op::unwrap_clean(slot));
    }
    Ok(out)
}

/// Materializing scan: events are copied out of the segments, residual
/// global predicates applied per event.
fn scan_events(
    env: &ExecEnv<'_>,
    parts: &[PartitionKey],
    filter: &EventFilter,
    parallel: bool,
) -> Result<Vec<Event>, EngineError> {
    let residual = &env.a.globals.residual;
    let gov = env.gov();
    if !parallel {
        let mut out = Vec::new();
        for &key in parts {
            if gov.is_some_and(|g| g.check().is_err()) {
                break;
            }
            env.store.scan_partition(key, filter, &mut |e| {
                if residual_ok(e, residual) {
                    out.push(*e);
                }
            });
        }
        return Ok(out);
    }
    let store = env.store;
    scan_chunked(env, parts, |group, out| {
        for &key in group {
            if gov.is_some_and(|g| g.check().is_err()) {
                return;
            }
            store.scan_partition(key, filter, &mut |e| {
                if residual_ok(e, residual) {
                    out.push(*e);
                }
            });
        }
    })
}

/// Late-materialization scan: selection vectors per partition become
/// [`EventRef`]s; residual global predicates are verified against the
/// columns without building events.
fn scan_refs(
    env: &ExecEnv<'_>,
    parts: &[PartitionKey],
    filter: &EventFilter,
    parallel: bool,
) -> Result<Vec<EventRef>, EngineError> {
    let residual = &env.a.globals.residual;
    let table = &env.parts;
    let gov = env.gov();
    // Governor granularity here is one partition: a tripped query skips
    // the partitions it has not started (PatternScan::run observes the
    // sticky trip right after the scan and unwinds or truncates).
    let collect_part = |key: PartitionKey, out: &mut Vec<EventRef>| {
        if gov.is_some_and(|g| g.check().is_err()) {
            return;
        }
        let part = table.index_of(key);
        let partition = table.parts[part as usize];
        for row in env.store.select_partition(key, filter) {
            let r = EventRef { part, row };
            if residual.is_empty()
                || residual_ok(&partition.event_at(key.agent, row as usize), residual)
            {
                out.push(r);
            }
        }
    };
    if !parallel {
        let mut out = Vec::new();
        for &key in parts {
            collect_part(key, &mut out);
        }
        return Ok(out);
    }
    scan_chunked(env, parts, |group, out| {
        for &key in group {
            collect_part(key, out);
        }
    })
}

/// Checks the residual global predicates against one event.
pub fn residual_ok(e: &Event, residual: &[(String, CmpOp, Value)]) -> bool {
    residual.iter().all(|(attr, op, value)| {
        let Ok(actual) = e.get(attr) else {
            return false;
        };
        let bin = match op {
            CmpOp::Eq => aiql_lang::BinOp::Eq,
            CmpOp::Ne => aiql_lang::BinOp::Ne,
            CmpOp::Lt => aiql_lang::BinOp::Lt,
            CmpOp::Le => aiql_lang::BinOp::Le,
            CmpOp::Gt => aiql_lang::BinOp::Gt,
            CmpOp::Ge => aiql_lang::BinOp::Ge,
        };
        eval::apply_binop(bin, actual, *value).truthy()
    })
}
