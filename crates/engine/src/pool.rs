//! A persistent scan worker pool.
//!
//! The seed executor spawned a fresh set of scoped threads for every
//! pattern scan (`crossbeam::thread::scope`), paying thread-spawn latency
//! per pattern per query. The pool spawns its workers once per engine and
//! feeds them scan tasks through a shared queue; parallel scans
//! self-schedule over fine-grained partition chunks (each worker pulls the
//! next chunk index from a shared atomic cursor), which balances skewed
//! partitions the way work-stealing would.
//!
//! Panics are *contained*, not propagated: a panicking task is caught on
//! its worker (the worker survives and keeps pulling jobs), the payload
//! message is captured, and the whole batch reports a [`PoolPanic`] to the
//! submitting query — which surfaces it as
//! `EngineError::WorkerPanic` while every other query keeps using the pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A panic caught on a pool worker, with the payload message when the
/// payload was a string (the overwhelmingly common case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPanic {
    /// The panic payload, or a placeholder for non-string payloads.
    pub message: String,
}

impl std::fmt::Display for PoolPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool task panicked: {}", self.message)
    }
}

impl std::error::Error for PoolPanic {}

/// Extracts a readable message from a panic payload.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The process-wide shared scan executor, spawned once on first use and
/// sized by the machine (`std::thread::available_parallelism`). Engines use
/// it by default (`EngineConfig::shared_scan_pool`), so concurrent engine
/// instances stop spawning private worker sets; per-query fan-out is still
/// capped by each engine's `parallelism` via [`ScanPool::run_chunks_capped`].
static SHARED: OnceLock<Arc<ScanPool>> = OnceLock::new();

/// The process-wide shared pool handle.
pub fn shared() -> Arc<ScanPool> {
    SHARED
        .get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4);
            Arc::new(ScanPool::new(threads))
        })
        .clone()
}

/// Completion barrier for one batch of pool tasks.
struct WaitGroup {
    remaining: Mutex<usize>,
    zero: Condvar,
    /// First caught panic message of the batch, if any.
    panic_msg: Mutex<Option<String>>,
}

impl WaitGroup {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(WaitGroup {
            remaining: Mutex::new(count),
            zero: Condvar::new(),
            panic_msg: Mutex::new(None),
        })
    }

    // The waitgroup's own locks recover from poisoning instead of
    // propagating it: task panics are caught *before* `done()` runs, so a
    // poisoned lock here can only mean a panic inside the accounting
    // itself — recovering keeps the barrier sound and lets the batch
    // surface its error instead of cascading a second panic.

    fn record_panic(&self, message: String) {
        let mut slot = self.panic_msg.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert(message);
    }

    fn take_panic(&self) -> Option<PoolPanic> {
        self.panic_msg
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .map(|message| PoolPanic { message })
    }

    fn done(&self) {
        let mut left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *left = left.saturating_sub(1);
        if *left == 0 {
            self.zero.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *left > 0 {
            left = self.zero.wait(left).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A fixed set of worker threads executing submitted scan tasks.
pub struct ScanPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ScanPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ScanPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("aiql-scan-{i}"))
                    .spawn(move || loop {
                        let job = {
                            // Recover a poisoned queue lock: jobs are
                            // wrapped in catch_unwind, so poisoning can
                            // only come from a panic between recv and job
                            // dispatch — the queue itself stays valid.
                            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // pool dropped
                        }
                    })
                    .expect("spawn scan worker")
            })
            .collect();
        ScanPool {
            sender: Some(sender),
            workers,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task to completion on the pool, blocking the caller until
    /// all have finished. Tasks may borrow from the caller's stack: the
    /// blocking wait is what makes the lifetime extension below sound.
    ///
    /// A panicking task does not kill its worker or the batch: every task
    /// still runs, and the first caught panic comes back as `Err` so the
    /// owning query can surface it while the pool keeps serving others.
    pub fn scope<'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) -> Result<(), PoolPanic> {
        if tasks.is_empty() {
            return Ok(());
        }
        /// Waits for every *submitted* task on drop — including when the
        /// submit loop unwinds — so queued closures can never outlive the
        /// caller's stack frame. Tasks not yet handed to the queue are
        /// discounted first (nothing will ever signal them).
        struct SubmitGuard<'a> {
            wg: &'a Arc<WaitGroup>,
            unsent: usize,
        }
        impl Drop for SubmitGuard<'_> {
            fn drop(&mut self) {
                for _ in 0..self.unsent {
                    self.wg.done();
                }
                self.wg.wait();
            }
        }

        let wg = WaitGroup::new(tasks.len());
        let mut guard = SubmitGuard {
            wg: &wg,
            unsent: tasks.len(),
        };
        let sender = self.sender.as_ref().expect("pool alive");
        let mut workers_gone = false;
        for task in tasks {
            // SAFETY: `scope` blocks until every submitted task has run —
            // on the normal path and on unwind, via `SubmitGuard::drop`
            // (the waitgroup decrement inside the job runs even when the
            // task panics) — so no borrow in `task` can outlive this call.
            // That is the guarantee `std::thread::scope` provides, minus
            // the per-call spawns.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            let wg_job = Arc::clone(&wg);
            let sent = sender
                .send(Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        wg_job.record_panic(payload_message(payload.as_ref()));
                    }
                    wg_job.done();
                }))
                .is_ok();
            if !sent {
                // Workers exited (pool shutting down): the rejected closure
                // was returned and dropped inside this frame, so its borrow
                // never escaped; remaining tasks stay discounted by the
                // guard.
                workers_gone = true;
                break;
            }
            guard.unsent -= 1;
        }
        drop(guard); // blocks until all submitted tasks finished
        if workers_gone {
            return Err(PoolPanic {
                message: "scan pool workers exited while tasks were pending".into(),
            });
        }
        match wg.take_panic() {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }

    /// Fire-and-forget submission of one owned job — the caller does NOT
    /// block (background store maintenance rides on this; scan batches use
    /// [`ScanPool::scope`]). A panicking job is contained exactly like a
    /// scoped task's, it just has no batch to report to. Returns `false`
    /// when the pool is shutting down and the job was dropped unrun.
    pub fn submit(&self, job: Box<dyn FnOnce() + Send + 'static>) -> bool {
        match self.sender.as_ref() {
            Some(sender) => sender
                .send(Box::new(move || {
                    let _ = catch_unwind(AssertUnwindSafe(job));
                }))
                .is_ok(),
            None => false,
        }
    }

    /// Convenience: runs `f(chunk_index)` for every chunk index in
    /// `0..chunks`, using up to `threads` concurrent self-scheduling tasks.
    pub fn run_chunks(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) -> Result<(), PoolPanic> {
        self.run_chunks_capped(chunks, self.threads, f)
    }

    /// [`ScanPool::run_chunks`] with the concurrent-task fan-out capped at
    /// `max_workers`: a query configured for `parallelism = 2` keeps that
    /// degree even on a machine-wide shared pool with more workers.
    pub fn run_chunks_capped(
        &self,
        chunks: usize,
        max_workers: usize,
        f: &(dyn Fn(usize) + Sync),
    ) -> Result<(), PoolPanic> {
        if chunks == 0 {
            return Ok(());
        }
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let cursor = &cursor;
        let workers = self.threads.min(chunks).min(max_workers.max(1));
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            tasks.push(Box::new(move || loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= chunks {
                    break;
                }
                f(i);
            }));
        }
        self.scope(tasks)
    }
}

/// The scan pool doubles as the store's background-maintenance executor:
/// deferred compaction and novelty flushes run as ordinary pool jobs, so
/// maintenance shares the machine with scans instead of spawning its own
/// threads. A job submitted while the pool is shutting down is dropped
/// unrun — safe, because maintenance jobs are re-queued by the next commit
/// and guard themselves with a drain token anyway.
impl aiql_storage::MaintenanceExecutor for ScanPool {
    fn spawn(&self, job: Box<dyn FnOnce() + Send>) {
        self.submit(job);
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_tasks_with_borrows() {
        let pool = ScanPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(tasks).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn chunked_runs_visit_every_chunk_once() {
        let pool = ScanPool::new(3);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run_chunks(100, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn reusable_across_batches() {
        let pool = ScanPool::new(2);
        for _ in 0..10 {
            let counter = AtomicUsize::new(0);
            pool.run_chunks(8, &|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        }
    }

    #[test]
    fn task_panic_is_contained_with_its_message() {
        let pool = ScanPool::new(2);
        let boom: Vec<Box<dyn FnOnce() + Send + '_>> =
            vec![Box::new(|| panic!("intentional test panic"))];
        let err = pool.scope(boom).unwrap_err();
        assert!(err.message.contains("intentional test panic"));
        // Workers must still be serviceable afterwards.
        let counter = AtomicUsize::new(0);
        pool.run_chunks(4, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_batch_still_runs_every_other_task() {
        let pool = ScanPool::new(2);
        let counter = AtomicUsize::new(0);
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for i in 0..16 {
            let c = &counter;
            if i == 3 {
                tasks.push(Box::new(|| panic!("task 3 died")));
            } else {
                tasks.push(Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
        let err = pool.scope(tasks).unwrap_err();
        assert!(err.message.contains("task 3 died"));
        assert_eq!(counter.load(Ordering::SeqCst), 15);
    }
}
