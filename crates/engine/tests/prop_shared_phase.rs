//! Differential property tests for the PR 2 shared-phase optimizations.
//!
//! Four new toggles exist on top of the PR 1 pipeline:
//!
//! * `StoreConfig::ngram_index` — trigram/prefix dictionary indexes for
//!   `LIKE` resolution;
//! * `StoreConfig::vectorized_residual` — chunked columnar mask passes for
//!   residual predicates;
//! * `EngineConfig::plan_cache` — the store-epoch-invalidated
//!   plan-resolution LRU;
//! * `EngineConfig::compiled_projection` — slot-compiled projection.
//!
//! Every combination must return tables byte-identical (rows AND order) to
//! the all-off baseline, including on *repeated* execution (cache hits) and
//! across concurrent ingest (epoch bumps must invalidate the cache).

use aiql_engine::{Engine, EngineConfig};
use aiql_lang::parse_query;
use aiql_model::{AgentId, Operation, Timestamp};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};
use proptest::prelude::*;

fn arb_raw() -> impl Strategy<Value = RawEvent> {
    (
        0u32..3,
        prop_oneof![
            Just(Operation::Read),
            Just(Operation::Write),
            Just(Operation::Start),
            Just(Operation::Connect),
        ],
        0u32..5,
        0u32..6,
        0i64..5_000,
        0u64..2_000,
    )
        .prop_map(|(agent, op, subj, obj, secs, amount)| {
            let subject = EntitySpec::process(100 + subj, &format!("exe{subj}.bin"), "user");
            let object = match op {
                Operation::Read | Operation::Write => {
                    EntitySpec::file(&format!("/data/file{obj}"), "user")
                }
                Operation::Start => {
                    EntitySpec::process(200 + obj, &format!("child{obj}.bin"), "user")
                }
                _ => EntitySpec::tcp(
                    aiql_model::IpV4::from_octets(10, 0, 0, 1),
                    40_000,
                    aiql_model::IpV4::from_octets(10, 0, 4, 128 + (obj % 2) as u8),
                    443,
                ),
            };
            RawEvent::instant(
                AgentId(agent),
                op,
                subject,
                object,
                Timestamp::from_secs(secs),
                amount,
            )
        })
}

/// Queries leaning on the shared phase: LIKE shapes (suffix, prefix, infix,
/// `_`), repeated constraints (cache keys collide), aggregation with
/// aliases and having, distinct, order by, and IP dictionaries.
fn query_catalog() -> Vec<&'static str> {
    vec![
        r#"proc p["%exe1.bin"] read file f as e return p, f"#,
        r#"proc p["%exe_.bin"] read file f as e return p, f"#,
        r#"proc p["/data%"] write file f["%file3"] as e return p, f"#,
        r#"proc p["%exe%"] write file f as e return distinct p, f"#,
        r#"proc p1["%exe1.bin"] write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return p1, p2, f"#,
        r#"proc p1 start proc p2["%child%"] as e1
           proc p1 write ip i[dstip = "10.0.4.129"] as e2
           return p1, p2, i"#,
        r#"agentid = 1
           proc p read || write file f as e
           return distinct p, f"#,
        r#"proc p["%exe2.bin"] write file f as e
           return p, count(e.amount) as n, sum(e.amount) as total
           group by p, f
           having n > 1
           order by n desc"#,
        r#"proc p write file f as e
           return p, f, e.amount
           limit 7"#,
    ]
}

fn build_store(raws: &[RawEvent], ngram_index: bool, vectorized_residual: bool) -> EventStore {
    let mut store = EventStore::new(StoreConfig {
        time_bucket: aiql_model::Duration::from_mins(10),
        dedup: false,
        ngram_index,
        vectorized_residual,
        ..StoreConfig::default()
    });
    store.ingest_all(raws);
    store
}

/// PR 1 pipeline with every PR 2 optimization off.
fn baseline_config() -> EngineConfig {
    EngineConfig {
        plan_cache: false,
        compiled_projection: false,
        ..EngineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All sixteen combinations of ⟨ngram_index, vectorized_residual,
    /// plan_cache, compiled_projection⟩ return byte-identical tables to the
    /// all-off baseline — on first execution and on the cache-hitting
    /// second execution.
    #[test]
    fn shared_phase_flags_match_baseline_exactly(
        raws in proptest::collection::vec(arb_raw(), 0..120),
        flags in 0u32..16,
    ) {
        let ngram_index = flags & 1 != 0;
        let vectorized_residual = flags & 2 != 0;
        let plan_cache = flags & 4 != 0;
        let compiled_projection = flags & 8 != 0;

        let baseline_store = build_store(&raws, false, false);
        let variant_store = build_store(&raws, ngram_index, vectorized_residual);
        let baseline = Engine::new(baseline_config());
        let variant = Engine::new(EngineConfig {
            plan_cache,
            compiled_projection,
            ..EngineConfig::default()
        });
        for src in query_catalog() {
            let q = parse_query(src).unwrap();
            let want = baseline.execute(&baseline_store, &q).unwrap();
            for round in 0..2 {
                let got = variant.execute(&variant_store, &q).unwrap();
                prop_assert_eq!(
                    &want.rows, &got.rows,
                    "query {:?} flags {:04b} round {}: rows/order differ ({} vs {})",
                    src, flags, round, want.rows.len(), got.rows.len()
                );
                prop_assert_eq!(want.truncated, got.truncated);
                prop_assert_eq!(&want.columns, &got.columns);
            }
        }
    }

    /// Concurrent ingest invalidates the plan cache: after appending a
    /// second batch (epoch bump), the cached engine must agree with a
    /// fresh uncached engine on the grown store.
    #[test]
    fn plan_cache_survives_concurrent_ingest(
        first in proptest::collection::vec(arb_raw(), 1..80),
        second in proptest::collection::vec(arb_raw(), 1..80),
    ) {
        let mut cached_store = build_store(&first, true, true);
        let mut uncached_store = build_store(&first, true, true);
        let cached = Engine::new(EngineConfig::default());
        let uncached = Engine::new(baseline_config());
        for src in query_catalog() {
            let q = parse_query(src).unwrap();
            // Warm the cache on the first batch…
            let warm = cached.execute(&cached_store, &q).unwrap();
            let want = uncached.execute(&uncached_store, &q).unwrap();
            prop_assert_eq!(&warm.rows, &want.rows, "pre-ingest {:?}", src);
        }
        // …then grow both stores identically and re-run everything: stale
        // resolutions/estimates must not leak through the epoch bump.
        cached_store.ingest_all(&second);
        uncached_store.ingest_all(&second);
        for src in query_catalog() {
            let q = parse_query(src).unwrap();
            let got = cached.execute(&cached_store, &q).unwrap();
            let want = uncached.execute(&uncached_store, &q).unwrap();
            prop_assert_eq!(&got.rows, &want.rows, "post-ingest {:?}", src);
        }
    }
}
