//! Differential property tests for the late-materialization pipeline.
//!
//! The executor has two data paths (`EngineConfig::late_materialization`)
//! layered over two storage scan paths (`StoreConfig::selection_vectors`)
//! and two parallel fan-out strategies (`EngineConfig::scan_pool`). Every
//! combination must return *identical* result tables — same rows in the
//! same order — because all paths share one candidate-enumeration order
//! (partition order, then row order) and one join traversal.

use aiql_engine::pool::ScanPool;
use aiql_engine::{analyze_multievent, Engine, EngineConfig};
use aiql_lang::parse_query;
use aiql_model::{AgentId, Operation, Timestamp};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};
use proptest::prelude::*;

fn arb_raw() -> impl Strategy<Value = RawEvent> {
    (
        0u32..3,
        prop_oneof![
            Just(Operation::Read),
            Just(Operation::Write),
            Just(Operation::Start),
            Just(Operation::Connect),
        ],
        0u32..5,
        0u32..6,
        0i64..5_000,
        0u64..2_000,
    )
        .prop_map(|(agent, op, subj, obj, secs, amount)| {
            let subject = EntitySpec::process(100 + subj, &format!("exe{subj}.bin"), "user");
            let object = match op {
                Operation::Read | Operation::Write => {
                    EntitySpec::file(&format!("/data/file{obj}"), "user")
                }
                Operation::Start => {
                    EntitySpec::process(200 + obj, &format!("child{obj}.bin"), "user")
                }
                _ => EntitySpec::tcp(
                    aiql_model::IpV4::from_octets(10, 0, 0, 1),
                    40_000,
                    aiql_model::IpV4::from_octets(10, 0, 4, 128 + (obj % 2) as u8),
                    443,
                ),
            };
            RawEvent::instant(
                AgentId(agent),
                op,
                subject,
                object,
                Timestamp::from_secs(secs),
                amount,
            )
        })
}

/// Queries covering joins, shared variables, temporal chains, aggregation,
/// op alternatives, and entity constraints.
fn query_catalog() -> Vec<&'static str> {
    vec![
        r#"proc p["%exe1.bin"] read file f as e return p, f"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return p1, p2, f"#,
        r#"proc p1 start proc p2 as e1
           proc p2 write file f as e2
           proc p2 write ip i[dstip = "10.0.4.129"] as e3
           with e1 before e2, e2 before e3
           return p1, p2, f, i"#,
        r#"agentid = 1
           proc p read || write file f as e
           return distinct p, f"#,
        r#"proc p write file f as e
           return p, count(e.amount) as n, sum(e.amount) as total
           group by p
           having n > 1"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before[10 min] e2
           return p1, p2"#,
        r#"proc p write file f1["%file1"] as e1
           proc p write file f2["%file2"] as e2
           return distinct p"#,
    ]
}

fn build_store(raws: &[RawEvent], selection_vectors: bool, cost_based_access: bool) -> EventStore {
    let mut store = EventStore::new(StoreConfig {
        time_bucket: aiql_model::Duration::from_mins(10),
        dedup: false,
        selection_vectors,
        cost_based_access,
        ..StoreConfig::default()
    });
    store.ingest_all(raws);
    store
}

/// The fully materializing configuration — the seed's pipeline.
fn materializing_config() -> EngineConfig {
    EngineConfig {
        late_materialization: false,
        scan_pool: false,
        ..EngineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Late materialization returns byte-identical tables (rows AND order)
    /// to the materializing path under every flag combination of
    /// ⟨selection_vectors, cost_based_access, late_materialization,
    /// scan_pool, partition_parallel⟩.
    #[test]
    fn late_pipeline_matches_materializing_exactly(
        raws in proptest::collection::vec(arb_raw(), 0..120),
        flags in 0u32..32,
    ) {
        let selection_vectors = flags & 1 != 0;
        let cost_based_access = flags & 2 != 0;
        let late_materialization = flags & 4 != 0;
        let scan_pool = flags & 8 != 0;
        let partition_parallel = flags & 16 != 0;

        let baseline_store = build_store(&raws, false, false);
        let variant_store = build_store(&raws, selection_vectors, cost_based_access);
        let baseline = Engine::new(materializing_config());
        let variant = Engine::new(EngineConfig {
            late_materialization,
            scan_pool,
            partition_parallel,
            // Force the parallel path so pool/scoped fan-out is exercised
            // even on small generated stores.
            parallel_threshold: 0,
            ..EngineConfig::default()
        });
        for src in query_catalog() {
            let q = parse_query(src).unwrap();
            let want = baseline.execute(&baseline_store, &q).unwrap();
            let got = variant.execute(&variant_store, &q).unwrap();
            prop_assert_eq!(
                &want.rows, &got.rows,
                "query {:?} flags {:05b}: rows/order differ ({} vs {})",
                src, flags, want.rows.len(), got.rows.len()
            );
            prop_assert_eq!(want.truncated, got.truncated);
        }
    }

    /// The persistent pool and single-threaded scans agree event-for-event.
    #[test]
    fn pool_and_single_thread_scans_agree(
        raws in proptest::collection::vec(arb_raw(), 1..150),
    ) {
        let store = build_store(&raws, true, true);
        let pooled = Engine::new(EngineConfig {
            parallelism: 8,
            parallel_threshold: 0,
            ..EngineConfig::default()
        });
        let single = Engine::new(EngineConfig {
            parallelism: 1,
            partition_parallel: false,
            scan_pool: false,
            ..EngineConfig::default()
        });
        for src in query_catalog() {
            let q = parse_query(src).unwrap();
            let a = pooled.execute(&store, &q).unwrap();
            let b = single.execute(&store, &q).unwrap();
            prop_assert_eq!(&a.rows, &b.rows, "query {:?}", src);
        }
    }
}

/// One deterministic (non-property) check that the pool path really runs
/// scans on pool workers and still matches the serial scan, plus stats
/// parity between the two pipelines.
#[test]
fn pool_scan_unit_roundtrip() {
    let raws: Vec<RawEvent> = (0..2_000)
        .map(|i| {
            RawEvent::instant(
                AgentId(i % 7),
                if i % 3 == 0 {
                    Operation::Write
                } else {
                    Operation::Read
                },
                EntitySpec::process(100 + (i % 5), &format!("exe{}.bin", i % 5), "user"),
                EntitySpec::file(&format!("/data/file{}", i % 17), "user"),
                Timestamp::from_secs(i64::from(i) * 7),
                u64::from(i),
            )
        })
        .collect();
    let store = build_store(&raws, true, true);

    let pool = ScanPool::new(4);
    assert_eq!(pool.threads(), 4);

    let src = r#"proc p1 write file f as e1
                 proc p2 read file f as e2
                 with e1 before e2
                 return p1, p2, f"#;
    let q = parse_query(src).unwrap();
    let aiql_lang::Query::Multievent(m) = &q else {
        panic!()
    };
    let analyzed = analyze_multievent(m, &store).unwrap();

    let pooled_cfg = EngineConfig {
        parallelism: 4,
        parallel_threshold: 0,
        ..EngineConfig::default()
    };
    let serial_cfg = EngineConfig {
        parallelism: 1,
        partition_parallel: false,
        ..EngineConfig::default()
    };
    let pooled = aiql_engine::exec::MultieventExec::new(&store, &analyzed, &pooled_cfg)
        .with_pool(Some(std::sync::Arc::new(ScanPool::new(4))));
    let serial = aiql_engine::exec::MultieventExec::new(&store, &analyzed, &serial_cfg);
    let (t1, trunc1, stats1) = pooled.match_tuples().unwrap();
    let (t2, trunc2, stats2) = serial.match_tuples().unwrap();
    assert_eq!(trunc1, trunc2);
    assert_eq!(stats1.fetched, stats2.fetched, "per-pattern fetch counts");
    assert_eq!(t1.len(), t2.len());
    for (a, b) in t1.iter().zip(&t2) {
        assert_eq!(a.vars, b.vars);
        assert_eq!(a.events, b.events);
    }
}
