//! Governor semantics (PR 6): deadlines, cancellation, and memory budgets
//! tripping at arbitrary points of a 4-pattern join chain.
//!
//! The contract under test:
//!
//! * **Error mode** (default): a tripped budget unwinds cleanly with the
//!   matching structured error — `DeadlineExceeded`, `Cancelled`, or
//!   `MemoryBudget` — and the engine (store, plan cache, shared pool)
//!   remains fully usable afterwards.
//! * **Partial mode** (`partial_results`): the query returns a
//!   *prefix-preserving* truncated table — its rows are a prefix of the
//!   ungoverned result — flagged `truncated` and carrying a [`Warning`].
//! * **Determinism**: memory-budget truncation converts the byte budget
//!   into a row cap on the query thread, so serial and parallel joins
//!   truncate at the same tuple and return byte-identical tables.
//! * **Panic containment**: a worker panic mid-scan surfaces as
//!   `WorkerPanic` for the owning query only; the process-wide pool keeps
//!   serving subsequent queries.

use std::sync::Arc;
use std::time::Duration;

use aiql_engine::{
    CancelToken, Engine, EngineConfig, EngineError, ExecBudget, ManualClock, ResultTable, Warning,
};
use aiql_lang::parse_query;
use aiql_model::{AgentId, Operation, Timestamp, Value};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};
use proptest::prelude::*;

/// The 4-pattern chain from the operator-pipeline differential suite: a
/// join deep enough that budgets can trip in any of its steps.
const CHAIN_QUERY: &str = r#"proc p1 write file f as e1
   proc p2 read file f as e2
   proc p2 write file f2 as e3
   proc p3 read file f2 as e4
   with e1 before e2, e2 before e3, e3 before e4
   return p1, p3, f, f2"#;

fn arb_raw() -> impl Strategy<Value = RawEvent> {
    (
        0u32..3,
        prop_oneof![Just(Operation::Read), Just(Operation::Write)],
        0u32..4,
        0u32..3,
        0i64..5_000,
        0u64..2_000,
    )
        .prop_map(|(agent, op, subj, obj, secs, amount)| {
            RawEvent::instant(
                AgentId(agent),
                op,
                EntitySpec::process(100 + subj, &format!("exe{subj}.bin"), "user"),
                EntitySpec::file(&format!("/data/file{obj}"), "user"),
                Timestamp::from_secs(secs),
                amount,
            )
        })
}

fn build_store(raws: &[RawEvent]) -> EventStore {
    let mut store = EventStore::new(StoreConfig {
        time_bucket: aiql_model::Duration::from_mins(10),
        dedup: false,
        ..StoreConfig::default()
    });
    store.ingest_all(raws);
    store
}

/// A governed config: `parallel` toggles both the frontier-partitioned
/// join and the pooled parallel scans that the governor must coordinate
/// with.
fn config(parallel: bool, late_mat: bool) -> EngineConfig {
    EngineConfig {
        parallelism: if parallel { 4 } else { 1 },
        parallel_join: parallel,
        join_partitions: if parallel { 3 } else { 0 },
        parallel_threshold: 0,
        late_materialization: late_mat,
        ..EngineConfig::default()
    }
}

/// Asserts `partial` is a row-prefix of `full` (the partial-mode contract
/// for non-aggregated queries).
fn assert_prefix(partial: &aiql_engine::ResultTable, full: &aiql_engine::ResultTable) {
    assert!(
        partial.rows.len() <= full.rows.len(),
        "partial result larger than the full one: {} > {}",
        partial.rows.len(),
        full.rows.len()
    );
    assert_eq!(
        partial.rows[..],
        full.rows[..partial.rows.len()],
        "partial rows are not a prefix of the full result"
    );
}

#[test]
fn precancelled_query_errors_cleanly_and_engine_survives() {
    let raws: Vec<RawEvent> = (0..200)
        .map(|i| {
            RawEvent::instant(
                AgentId((i % 3) as u32),
                if i % 2 == 0 {
                    Operation::Write
                } else {
                    Operation::Read
                },
                EntitySpec::process(100 + (i % 4) as u32, &format!("exe{}.bin", i % 4), "user"),
                EntitySpec::file(&format!("/data/file{}", i % 3), "user"),
                Timestamp::from_secs(i),
                i as u64,
            )
        })
        .collect();
    let store = build_store(&raws);
    let engine = Engine::new(config(true, true));

    let token = CancelToken::new();
    token.cancel();
    let budget = ExecBudget::unlimited().with_cancel(token);
    let query = parse_query(CHAIN_QUERY).unwrap();
    let err = engine
        .execute_with_budget(&store, &query, &budget)
        .unwrap_err();
    assert_eq!(err, EngineError::Cancelled);

    // The engine (plan cache, pool) is untouched: the same query runs
    // ungoverned to completion afterwards.
    engine.execute(&store, &query).unwrap();
}

#[test]
fn precancelled_partial_mode_returns_empty_prefix_with_warning() {
    let raws: Vec<RawEvent> = (0..100)
        .map(|i| {
            RawEvent::instant(
                AgentId(1),
                Operation::Write,
                EntitySpec::process(100, "exe0.bin", "user"),
                EntitySpec::file(&format!("/data/file{}", i % 3), "user"),
                Timestamp::from_secs(i),
                i as u64,
            )
        })
        .collect();
    let store = build_store(&raws);
    let engine = Engine::new(config(false, true));

    let token = CancelToken::new();
    token.cancel();
    let budget = ExecBudget::unlimited()
        .with_cancel(token)
        .with_partial_results(true);
    let table = engine
        .execute_text_with_budget(&store, "proc p write file f as e return p, f", &budget)
        .unwrap();
    assert!(table.truncated);
    assert_eq!(table.warnings, vec![Warning::Cancelled]);
    assert!(table.rows.is_empty(), "pre-cancelled query produced rows");
}

#[test]
fn expired_deadline_maps_to_structured_error() {
    let store = build_store(&[RawEvent::instant(
        AgentId(1),
        Operation::Write,
        EntitySpec::process(100, "exe0.bin", "user"),
        EntitySpec::file("/data/file0", "user"),
        Timestamp::from_secs(1),
        10,
    )]);
    let engine = Engine::new(config(false, true));
    let budget = ExecBudget::unlimited().with_deadline(Duration::ZERO);
    let err = engine
        .execute_text_with_budget(&store, "proc p write file f as e return p", &budget)
        .unwrap_err();
    assert_eq!(err, EngineError::DeadlineExceeded { deadline_ms: 0 });
}

#[test]
fn config_level_governor_tunables_apply() {
    let store = build_store(&[RawEvent::instant(
        AgentId(1),
        Operation::Write,
        EntitySpec::process(100, "exe0.bin", "user"),
        EntitySpec::file("/data/file0", "user"),
        Timestamp::from_secs(1),
        10,
    )]);
    // memory_budget_bytes: 1 cannot hold a single scanned batch: error mode
    // surfaces MemoryBudget, partial mode a truncated (empty) prefix.
    let strict = Engine::new(EngineConfig {
        memory_budget_bytes: 1,
        ..config(false, true)
    });
    let err = strict
        .execute_text(&store, "proc p write file f as e return p")
        .unwrap_err();
    assert_eq!(err, EngineError::MemoryBudget { budget_bytes: 1 });

    let lenient = Engine::new(EngineConfig {
        memory_budget_bytes: 1,
        partial_results: true,
        ..config(false, true)
    });
    let table = lenient
        .execute_text(&store, "proc p write file f as e return p")
        .unwrap();
    assert!(table.truncated);
    assert_eq!(
        table.warnings,
        vec![Warning::MemoryBudget { budget_bytes: 1 }]
    );
}

#[test]
fn mid_query_cancel_from_another_thread_is_clean_and_sticky() {
    let raws: Vec<RawEvent> = (0..3_000)
        .map(|i| {
            RawEvent::instant(
                AgentId((i % 3) as u32),
                if i % 2 == 0 {
                    Operation::Write
                } else {
                    Operation::Read
                },
                EntitySpec::process(100 + (i % 4) as u32, &format!("exe{}.bin", i % 4), "user"),
                EntitySpec::file(&format!("/data/file{}", i % 3), "user"),
                Timestamp::from_secs(i % 4_000),
                i as u64,
            )
        })
        .collect();
    let store = build_store(&raws);
    let engine = Engine::new(config(true, true));
    let query = parse_query(CHAIN_QUERY).unwrap();

    let token = CancelToken::new();
    let budget = ExecBudget::unlimited().with_cancel(token.clone());
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(1));
            token.cancel();
        })
    };
    // Depending on timing the query finishes first or observes the cancel;
    // both are clean outcomes, anything else is a containment bug.
    match engine.execute_with_budget(&store, &query, &budget) {
        Ok(_) => {}
        Err(e) => assert_eq!(e, EngineError::Cancelled),
    }
    canceller.join().unwrap();

    // The trip is sticky on the token, not the engine: a fresh run under
    // the now-cancelled token trips immediately, an unbudgeted run works.
    let err = engine
        .execute_with_budget(&store, &query, &budget)
        .unwrap_err();
    assert_eq!(err, EngineError::Cancelled);
    engine.execute(&store, &query).unwrap();
}

#[test]
fn worker_panic_is_contained_and_pool_stays_healthy() {
    let raws: Vec<RawEvent> = (0..400)
        .map(|i| {
            RawEvent::instant(
                AgentId((i % 3) as u32),
                Operation::Write,
                EntitySpec::process(100 + (i % 4) as u32, &format!("exe{}.bin", i % 4), "user"),
                EntitySpec::file(&format!("/data/file{}", i % 3), "user"),
                Timestamp::from_secs(i),
                i as u64,
            )
        })
        .collect();
    let store = build_store(&raws);
    let query = parse_query("proc p write file f as e return p, f").unwrap();

    // Chaos engine: every pooled scan task panics. The panic must surface
    // as a structured WorkerPanic for this query, not abort the process or
    // poison the shared executor.
    let chaos = Engine::new(EngineConfig {
        inject_scan_panic: true,
        ..config(true, true)
    });
    let err = chaos.execute(&store, &query).unwrap_err();
    match &err {
        EngineError::WorkerPanic { message } => {
            assert!(message.contains("injected scan panic"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }

    // The same process-wide pool keeps serving: a healthy engine returns
    // the exact serial-reference result after the panic...
    let healthy = Engine::new(config(true, true));
    let expected = Engine::new(config(false, true))
        .execute(&store, &query)
        .unwrap();
    let got = healthy.execute(&store, &query).unwrap();
    assert_eq!(got, expected);

    // ...and the chaos engine keeps failing cleanly, run after run.
    let err2 = chaos.execute(&store, &query).unwrap_err();
    assert!(matches!(err2, EngineError::WorkerPanic { .. }));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// A memory budget tripping at a random point of the chain either
    /// errors with `MemoryBudget` (error mode) or returns a prefix of the
    /// ungoverned result (partial mode) — byte-identical across the serial
    /// and parallel joins.
    #[test]
    fn memory_budget_prefix_is_deterministic_across_join_modes(
        raws in proptest::collection::vec(arb_raw(), 20..150),
        budget_bytes in 1u64..40_000,
        late_mat in any::<bool>(),
    ) {
        let store = build_store(&raws);
        let query = parse_query(CHAIN_QUERY).unwrap();
        let full = Engine::new(config(false, late_mat))
            .execute(&store, &query)
            .unwrap();

        // Error mode: a trip is the matching structured error; no trip
        // must reproduce the ungoverned result exactly.
        let strict = ExecBudget::unlimited().with_memory_bytes(budget_bytes);
        let serial = Engine::new(config(false, late_mat))
            .execute_with_budget(&store, &query, &strict);
        match &serial {
            Ok(t) => prop_assert_eq!(&t.rows, &full.rows),
            Err(e) => prop_assert_eq!(
                e,
                &EngineError::MemoryBudget { budget_bytes }
            ),
        }

        // Partial mode: always Ok, rows a prefix of the full result, and
        // the serial/parallel joins agree byte-for-byte.
        let partial = ExecBudget::unlimited()
            .with_memory_bytes(budget_bytes)
            .with_partial_results(true);
        let p_serial = Engine::new(config(false, late_mat))
            .execute_with_budget(&store, &query, &partial)
            .unwrap();
        assert_prefix(&p_serial, &full);
        if !p_serial.warnings.is_empty() {
            prop_assert!(p_serial.truncated);
        }
        let p_parallel = Engine::new(config(true, late_mat))
            .execute_with_budget(&store, &query, &partial)
            .unwrap();
        prop_assert_eq!(&p_parallel.rows, &p_serial.rows);
        prop_assert_eq!(p_parallel.truncated, p_serial.truncated);
        prop_assert_eq!(&p_parallel.warnings, &p_serial.warnings);
    }

    /// Cancellation raised at a random point (simulated by a pre-tripped
    /// token vs. an untripped one) never corrupts later runs: after any
    /// governed outcome, the ungoverned result is unchanged.
    #[test]
    fn governed_runs_never_perturb_ungoverned_results(
        raws in proptest::collection::vec(arb_raw(), 20..120),
        budget_bytes in 1u64..20_000,
        parallel in any::<bool>(),
    ) {
        let store = build_store(&raws);
        let query = parse_query(CHAIN_QUERY).unwrap();
        let engine = Engine::new(config(parallel, true));
        let before = engine.execute(&store, &query).unwrap();

        let token = CancelToken::new();
        token.cancel();
        let _ = engine.execute_with_budget(
            &store,
            &query,
            &ExecBudget::unlimited().with_cancel(token),
        );
        let _ = engine.execute_with_budget(
            &store,
            &query,
            &ExecBudget::unlimited().with_memory_bytes(budget_bytes),
        );
        let _ = engine.execute_with_budget(
            &store,
            &query,
            &ExecBudget::unlimited()
                .with_memory_bytes(budget_bytes)
                .with_partial_results(true),
        );

        let after = engine.execute(&store, &query).unwrap();
        prop_assert_eq!(before.rows, after.rows);
    }
}

// ---------------------------------------------------------------------------
// Projection / aggregation coverage (PR 7 satellite): the suites above trip
// budgets inside scans and the 4-pattern join; these flood a *single-pattern*
// query with far more than `GOV_CHECK_INTERVAL` surviving tuples, so the
// `Project`/`Aggregate` operators' own polling loop is what the governor
// interrupts — and the aggregated partial-results contract gets pinned down:
// groups are discovered in first-occurrence order over the consumed tuple
// prefix, so a truncated table's group keys are a prefix of the full run's
// and every aggregate bounds the full run's value from below.
// ---------------------------------------------------------------------------

/// One write event per tick; a fresh file every 1500 events so new groups
/// keep appearing throughout the scan (truncation mid-stream must drop the
/// late groups, not just shrink counts).
fn flood_raws(n: usize) -> Vec<RawEvent> {
    (0..n)
        .map(|i| {
            RawEvent::instant(
                AgentId((i % 3) as u32),
                Operation::Write,
                EntitySpec::process(100 + (i % 5) as u32, &format!("exe{}.bin", i % 5), "user"),
                EntitySpec::file(&format!("/data/file{}", i / 1500), "user"),
                Timestamp::from_secs(i as i64),
                (i % 97) as u64,
            )
        })
        .collect()
}

const AGG_QUERY: &str = "proc p write file f as e \
    return p, f, count(e.amount) as c, sum(e.amount) as s group by p, f";
const FLAT_QUERY: &str = "proc p write file f as e return p, f";

fn numeric(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        other => panic!("expected a numeric aggregate, got {other:?}"),
    }
}

/// The aggregated partial-mode contract: group keys (the first `key_cols`
/// columns) are a prefix of the full run's group keys, and every aggregate
/// column is bounded by the full run's value for that group.
fn assert_group_prefix(partial: &ResultTable, full: &ResultTable, key_cols: usize) {
    assert!(
        partial.rows.len() <= full.rows.len(),
        "partial aggregation has more groups than the full one: {} > {}",
        partial.rows.len(),
        full.rows.len()
    );
    for (gi, (p, f)) in partial.rows.iter().zip(full.rows.iter()).enumerate() {
        assert_eq!(
            p[..key_cols],
            f[..key_cols],
            "group {gi}: key diverges from the full run's group order"
        );
        for (ci, (pv, fv)) in p[key_cols..].iter().zip(f[key_cols..].iter()).enumerate() {
            assert!(
                numeric(pv) <= numeric(fv),
                "group {gi} aggregate {ci}: partial {pv:?} exceeds full {fv:?}"
            );
        }
    }
}

#[test]
fn aggregated_memory_truncation_preserves_group_prefix() {
    let store = build_store(&flood_raws(9000));
    let query = parse_query(AGG_QUERY).unwrap();
    let engine = Engine::new(config(false, true));
    let full = engine.execute(&store, &query).unwrap();
    // 5 processes × 6 file generations: enough groups that truncation has
    // late groups to lose.
    assert_eq!(full.rows.len(), 30);

    let mut saw_nonempty_truncation = false;
    for budget_bytes in [1u64 << 13, 1 << 16, 1 << 17, 1 << 18, 1 << 22] {
        let partial = ExecBudget::unlimited()
            .with_memory_bytes(budget_bytes)
            .with_partial_results(true);
        let t = engine
            .execute_with_budget(&store, &query, &partial)
            .unwrap();
        if t.truncated {
            assert_eq!(t.warnings, vec![Warning::MemoryBudget { budget_bytes }]);
            assert_group_prefix(&t, &full, 2);
            saw_nonempty_truncation |= !t.rows.is_empty();
            // Byte-budget truncation is a deterministic row cap: the
            // parallel-scan engine truncates at the same tuple.
            let tp = Engine::new(config(true, true))
                .execute_with_budget(&store, &query, &partial)
                .unwrap();
            assert_eq!(t.rows, tp.rows);
            assert_eq!(t.warnings, tp.warnings);
        } else {
            assert_eq!(
                t.rows, full.rows,
                "untripped budget must not perturb results"
            );
        }

        // Error mode at the same budget: either a clean structured error
        // or the exact full result — never a silent truncation.
        let strict = ExecBudget::unlimited().with_memory_bytes(budget_bytes);
        match engine.execute_with_budget(&store, &query, &strict) {
            Ok(t) => assert_eq!(t.rows, full.rows),
            Err(e) => assert_eq!(e, EngineError::MemoryBudget { budget_bytes }),
        }
    }
    assert!(
        saw_nonempty_truncation,
        "no budget in the sweep produced a nonempty truncated aggregation"
    );
}

#[test]
fn projection_memory_truncation_is_a_row_prefix() {
    // Non-aggregated projection: one output row per tuple, so the prefix
    // property is directly visible on the 9000-row table.
    let store = build_store(&flood_raws(9000));
    let query = parse_query(FLAT_QUERY).unwrap();
    let engine = Engine::new(config(false, true));
    let full = engine.execute(&store, &query).unwrap();
    assert_eq!(full.rows.len(), 9000);

    let mut saw_nonempty_truncation = false;
    for budget_bytes in [1u64 << 14, 1 << 17, 1 << 18, 1 << 22] {
        let partial = ExecBudget::unlimited()
            .with_memory_bytes(budget_bytes)
            .with_partial_results(true);
        let t = engine
            .execute_with_budget(&store, &query, &partial)
            .unwrap();
        if t.truncated {
            assert_eq!(t.warnings, vec![Warning::MemoryBudget { budget_bytes }]);
            assert_prefix(&t, &full);
            saw_nonempty_truncation |= !t.rows.is_empty();
            let tp = Engine::new(config(true, true))
                .execute_with_budget(&store, &query, &partial)
                .unwrap();
            assert_eq!(t.rows, tp.rows);
        } else {
            assert_eq!(t.rows, full.rows);
        }
    }
    assert!(
        saw_nonempty_truncation,
        "no budget in the sweep produced a nonempty truncated projection"
    );
}

#[test]
fn deadline_enforcement_follows_the_injected_clock() {
    let store = build_store(&flood_raws(6000));
    let query = parse_query(AGG_QUERY).unwrap();
    let engine = Engine::new(config(false, true));
    let full = engine.execute(&store, &query).unwrap();

    // A 1 ns deadline would trip instantly on the wall clock; on a frozen
    // ManualClock `now()` never reaches `started + deadline`, so the run
    // completes in full — proof the injected clock (not wall time) drives
    // enforcement, deterministic on arbitrarily slow hosts.
    let clock = ManualClock::new();
    let frozen = ExecBudget::unlimited()
        .with_deadline(Duration::from_nanos(1))
        .with_clock(Arc::new(clock.clone()));
    let t = engine.execute_with_budget(&store, &query, &frozen).unwrap();
    assert_eq!(t.rows, full.rows);
    assert!(!t.truncated);

    // A zero deadline reaches `deadline_at` even on the frozen clock: the
    // trip fires at the governor's first poll, identically on every run.
    let expired = ExecBudget::unlimited()
        .with_deadline(Duration::ZERO)
        .with_clock(Arc::new(clock.clone()));
    let err = engine
        .execute_with_budget(&store, &query, &expired)
        .unwrap_err();
    assert_eq!(err, EngineError::DeadlineExceeded { deadline_ms: 0 });

    let expired_partial = ExecBudget::unlimited()
        .with_deadline(Duration::ZERO)
        .with_clock(Arc::new(clock.clone()))
        .with_partial_results(true);
    let p1 = engine
        .execute_with_budget(&store, &query, &expired_partial)
        .unwrap();
    assert!(p1.truncated);
    assert_eq!(
        p1.warnings,
        vec![Warning::DeadlineExceeded { deadline_ms: 0 }]
    );
    assert_group_prefix(&p1, &full, 2);
    let p2 = engine
        .execute_with_budget(&store, &query, &expired_partial)
        .unwrap();
    assert_eq!(
        p1.rows, p2.rows,
        "expired-deadline truncation must be deterministic"
    );

    // Advancing the shared clock is visible to budgets built later: a
    // deadline that already passed at governor construction trips too.
    clock.advance(Duration::from_millis(10));
    let still_frozen = engine.execute_with_budget(&store, &query, &frozen).unwrap();
    assert_eq!(
        still_frozen.rows, full.rows,
        "governors anchor at construction: advancing beforehand must not expire a fresh run"
    );
}
