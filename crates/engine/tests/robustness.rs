//! Robustness and edge-case behavior of the engine: truncation guards,
//! degenerate windows, empty groups, ordering and limits, unicode-ish
//! inputs, and adversarial queries.

use aiql_engine::{Engine, EngineConfig};
use aiql_lang::parse_query;
use aiql_model::{AgentId, Operation, Timestamp, Value};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};

fn store_with(n: i64) -> EventStore {
    let mut store = EventStore::new(StoreConfig {
        dedup: false,
        ..StoreConfig::default()
    });
    let mut raws = Vec::new();
    for i in 0..n {
        raws.push(RawEvent::instant(
            AgentId((i % 2) as u32),
            if i % 2 == 0 {
                Operation::Write
            } else {
                Operation::Read
            },
            EntitySpec::process(100 + (i % 3) as u32, &format!("exe{}.bin", i % 3), "u"),
            EntitySpec::file(&format!("/f{}", i % 4), "u"),
            Timestamp::from_secs(i),
            (i as u64) * 3,
        ));
    }
    store.ingest_all(&raws);
    store
}

#[test]
fn intermediate_truncation_sets_flag() {
    let store = store_with(60);
    // A cartesian-ish query with a tiny cap must truncate, not explode.
    let engine = Engine::new(EngineConfig {
        max_intermediate: 5,
        ..EngineConfig::default()
    });
    let table = engine
        .execute_text(
            &store,
            r#"proc p1 write file f1 as e1
               proc p2 read file f2 as e2
               return p1, p2"#,
        )
        .unwrap();
    assert!(table.truncated);
    assert!(!table.rows.is_empty());
}

#[test]
fn limit_caps_row_count_and_order_is_respected() {
    let store = store_with(40);
    let engine = Engine::new(EngineConfig::default());
    let table = engine
        .execute_text(
            &store,
            r#"proc p write file f as e
               return p, sum(e.amount) as total
               group by p
               order by total desc
               limit 2"#,
        )
        .unwrap();
    assert!(table.rows.len() <= 2);
    if table.rows.len() == 2 {
        let a = table.rows[0][1].as_f64().unwrap();
        let b = table.rows[1][1].as_f64().unwrap();
        assert!(a >= b, "descending order violated: {a} < {b}");
    }
}

#[test]
fn order_by_unreturned_column_is_an_error() {
    let store = store_with(10);
    let engine = Engine::new(EngineConfig::default());
    let err = engine
        .execute_text(&store, "proc p write file f as e return p order by f")
        .unwrap_err();
    assert!(err.to_string().contains("order by"), "{err}");
}

#[test]
fn anomaly_on_empty_match_set_is_empty() {
    let store = store_with(10);
    let engine = Engine::new(EngineConfig::default());
    let table = engine
        .execute_text(
            &store,
            r#"window = 1 min, step = 30 sec
               proc p["%no_such%"] write file f as evt
               return p, count(*) as n
               group by p"#,
        )
        .unwrap();
    assert!(table.rows.is_empty());
}

#[test]
fn anomaly_window_larger_than_data_range() {
    let store = store_with(5); // 5 seconds of data
    let engine = Engine::new(EngineConfig::default());
    let table = engine
        .execute_text(
            &store,
            r#"window = 1 hour, step = 1 hour
               proc p write file f as evt
               return p, count(*) as n
               group by p
               having n >= 1"#,
        )
        .unwrap();
    // Everything lands in the single window.
    let total: i64 = table.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(total, 3); // 3 write events (ids 0, 2, 4)
}

#[test]
fn zero_limit_returns_nothing() {
    let store = store_with(10);
    let engine = Engine::new(EngineConfig::default());
    let table = engine
        .execute_text(&store, "proc p write file f as e return p limit 0")
        .unwrap();
    assert!(table.rows.is_empty());
}

#[test]
fn self_join_same_variable_subject_object() {
    // `proc p connect proc p` requires subject == object; none exist here.
    let store = store_with(20);
    let engine = Engine::new(EngineConfig::default());
    let table = engine
        .execute_text(&store, "proc p connect proc p as e return p")
        .unwrap();
    assert!(table.rows.is_empty());
}

#[test]
fn min_max_aggregates() {
    let store = store_with(20);
    let engine = Engine::new(EngineConfig::default());
    let table = engine
        .execute_text(
            &store,
            r#"proc p write file f as e
               return min(e.amount) as lo, max(e.amount) as hi"#,
        )
        .unwrap();
    assert_eq!(table.rows.len(), 1);
    let lo = table.rows[0][0];
    let hi = table.rows[0][1];
    assert_eq!(lo, Value::Int(0)); // event 0 amount 0
    assert_eq!(hi, Value::Int(54)); // event 18 amount 54
}

#[test]
fn having_without_aggregates_filters_rows() {
    let store = store_with(20);
    let engine = Engine::new(EngineConfig::default());
    let all = engine
        .execute_text(&store, "proc p write file f as e return p, e.amount")
        .unwrap();
    let filtered = engine
        .execute_text(
            &store,
            "proc p write file f as e return p, e.amount having e.amount > 24",
        )
        .unwrap();
    assert!(filtered.rows.len() < all.rows.len());
    for row in &filtered.rows {
        assert!(row[1].as_i64().unwrap() > 24);
    }
}

#[test]
fn unsatisfiable_query_short_circuits() {
    let store = store_with(50);
    let engine = Engine::new(EngineConfig::default());
    // Exact name not in the dictionary → zero scan work, empty result.
    let table = engine
        .execute_text(
            &store,
            r#"proc p["ghost.exe"] write file f as e
               proc p read file f2 as e2
               return p"#,
        )
        .unwrap();
    assert!(table.rows.is_empty());
}

#[test]
fn contradictory_agents_short_circuit() {
    let store = store_with(50);
    let engine = Engine::new(EngineConfig::default());
    let table = engine
        .execute_text(
            &store,
            "agentid = 0 agentid = 1 proc p write file f as e return p",
        )
        .unwrap();
    assert!(table.rows.is_empty());
}

#[test]
fn windows_paths_with_escapes_survive_the_pipeline() {
    let mut store = EventStore::default();
    store.ingest_all(&[RawEvent::instant(
        AgentId(1),
        Operation::Write,
        EntitySpec::process(1, r"C:\Program Files (x86)\Weird, Inc\tool.exe", "u"),
        EntitySpec::file(r#"C:\data\with "quotes".txt"#, "u"),
        Timestamp::from_secs(1),
        10,
    )]);
    let engine = Engine::new(EngineConfig::default());
    let table = engine
        .execute_text(
            &store,
            r#"proc p["%tool.exe"] write file f as e return p, f"#,
        )
        .unwrap();
    assert_eq!(table.rows.len(), 1);
    let csv = table.to_csv(store.interner());
    assert!(csv.contains("Weird"));
    // Query text containing the escaped quote also parses.
    let q = parse_query(r#"proc p read file f["%\"quotes\"%"] as e return f"#);
    assert!(q.is_ok());
}

#[test]
fn deep_temporal_chain_executes() {
    // 6 patterns in one strict chain over the same subject.
    let mut store = EventStore::default();
    let mut raws = Vec::new();
    for i in 0..6i64 {
        raws.push(RawEvent::instant(
            AgentId(1),
            Operation::Write,
            EntitySpec::process(7, "chain.exe", "u"),
            EntitySpec::file(&format!("/stage{i}"), "u"),
            Timestamp::from_secs(i * 100),
            1,
        ));
    }
    store.ingest_all(&raws);
    let src = r#"
        proc p write file f1["%stage0"] as e1
        proc p write file f2["%stage1"] as e2
        proc p write file f3["%stage2"] as e3
        proc p write file f4["%stage3"] as e4
        proc p write file f5["%stage4"] as e5
        proc p write file f6["%stage5"] as e6
        with e1 before e2, e2 before e3, e3 before e4, e4 before e5, e5 before e6
        return distinct p"#;
    let engine = Engine::new(EngineConfig::default());
    let table = engine.execute_text(&store, src).unwrap();
    assert_eq!(table.rows.len(), 1);
}
