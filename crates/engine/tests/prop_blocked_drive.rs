//! Differential property tests for the blocked demand-driven join drive
//! (PR 10).
//!
//! The blocked drive replaces the breadth-first step loop with depth-first
//! frontier runs (see `op/join.rs` module docs). Its contract, asserted
//! here against randomized stores:
//!
//! * **uncapped byte-identity** — with no cap tripping, the blocked drive
//!   returns tables byte-identical (rows AND order, truncation flag
//!   included) to the breadth-first drive, across the whole
//!   ⟨late-materialization, parallel-join, time-bucket, partitioned-probe,
//!   sideways-filter⟩ cube and block sizes 1 / 7 / 4096;
//! * **emission-order prefix under truncation** — with `max_intermediate`
//!   truncating, the blocked output is a prefix (in nested-loop emission
//!   order) of the *untruncated* result — stronger than breadth-first's
//!   per-step truncation, which is only compared against itself — and the
//!   serial and parallel blocked drives agree byte-for-byte;
//! * **governed modes** — under a memory budget, error mode either
//!   reproduces the ungoverned result or fails with the structured
//!   `MemoryBudget` error; partial mode always returns an emission-order
//!   prefix of the ungoverned result.

use aiql_engine::{Engine, EngineConfig, EngineError, ExecBudget};
use aiql_lang::parse_query;
use aiql_model::{AgentId, Operation, Timestamp};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};
use proptest::prelude::*;

fn arb_raw() -> impl Strategy<Value = RawEvent> {
    (
        0u32..3,
        prop_oneof![
            Just(Operation::Read),
            Just(Operation::Write),
            Just(Operation::Start),
        ],
        0u32..4,
        0u32..4,
        0i64..5_000,
        0u64..2_000,
    )
        .prop_map(|(agent, op, subj, obj, secs, amount)| {
            let subject = EntitySpec::process(100 + subj, &format!("exe{subj}.bin"), "user");
            let object = match op {
                Operation::Start => {
                    EntitySpec::process(200 + obj, &format!("child{obj}.bin"), "user")
                }
                // A small file universe makes the joins fan out.
                _ => EntitySpec::file(&format!("/data/file{obj}"), "user"),
            };
            RawEvent::instant(
                AgentId(agent),
                op,
                subject,
                object,
                Timestamp::from_secs(secs),
                amount,
            )
        })
}

fn build_store(raws: &[RawEvent]) -> EventStore {
    let mut store = EventStore::new(StoreConfig {
        time_bucket: aiql_model::Duration::from_mins(10),
        dedup: false,
        ..StoreConfig::default()
    });
    store.ingest_all(raws);
    store
}

/// Multievent queries spanning seed shapes the drive cares about:
/// unbounded and bounded chains, a branching 3-pattern, and an aggregate.
/// All but the last are non-aggregated so row order observes tuple
/// emission order directly.
fn query_catalog() -> Vec<&'static str> {
    vec![
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return p1, p2, f"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           proc p2 write file f2 as e3
           proc p3 read file f2 as e4
           with e1 before e2, e2 before e3, e3 before e4
           return p1, p3, f, f2"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           proc p2 write file f2 as e3
           with e1 before[10 min] e2, e2 before[30 min] e3
           return p1, p2, f, f2"#,
        r#"proc p1 start proc p2 as e1
           proc p2 write file f as e2
           proc p2 write file f2 as e3
           with e1 before e2, e2 before e3
           return p1, p2, f, f2"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return p1, count(e2.amount) as n
           group by p1"#,
    ]
}

/// The non-aggregated subset: prefix assertions need rows that map 1:1 to
/// emitted join tuples.
fn prefix_catalog() -> Vec<&'static str> {
    query_catalog()
        .into_iter()
        .filter(|q| !q.contains("count("))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With no cap tripping, the blocked drive is byte-identical to the
    /// breadth-first drive at every point of the configuration cube and
    /// every block size.
    #[test]
    fn blocked_drive_matches_breadth_first_exactly(
        raws in proptest::collection::vec(arb_raw(), 1..150),
        flags in 0u32..32,
        block in prop_oneof![Just(1usize), Just(7), Just(4096)],
    ) {
        let late_materialization = flags & 1 != 0;
        let parallel_join = flags & 2 != 0;
        let time_bucket_join = flags & 4 != 0;
        let partitioned_probe = flags & 8 != 0;
        let sideways_filters = flags & 16 != 0;
        let store = build_store(&raws);
        let shared = EngineConfig {
            late_materialization,
            parallel_join,
            time_bucket_join,
            partitioned_probe,
            sideways_filters,
            join_partitions: 3,
            parallelism: 4,
            shared_scan_pool: false,
            parallel_threshold: 0,
            parallel_join_min_work: 0,
            ..EngineConfig::default()
        };
        let breadth = Engine::new(EngineConfig {
            blocked_join_drive: false,
            ..shared.clone()
        });
        let blocked = Engine::new(EngineConfig {
            blocked_join_drive: true,
            join_block_tuples: block,
            ..shared
        });
        for src in query_catalog() {
            let q = parse_query(src).unwrap();
            let want = breadth.execute(&store, &q).unwrap();
            let got = blocked.execute(&store, &q).unwrap();
            prop_assert_eq!(
                &want.rows, &got.rows,
                "query {:?} flags {:05b} block {}: rows/order differ ({} vs {})",
                src, flags, block, want.rows.len(), got.rows.len()
            );
            prop_assert_eq!(
                want.truncated, got.truncated,
                "query {:?} flags {:05b} block {}: truncation flag differs",
                src, flags, block
            );
        }
    }

    /// Under a truncating `max_intermediate`, the blocked drive emits a
    /// prefix — in nested-loop emission order — of the untruncated result,
    /// and the serial and parallel blocked drives agree byte-for-byte.
    #[test]
    fn capped_blocked_drive_emits_an_emission_order_prefix(
        raws in proptest::collection::vec(arb_raw(), 1..150),
        cap in prop_oneof![Just(1usize), Just(2), Just(7), Just(100)],
        block in prop_oneof![Just(1usize), Just(7), Just(4096)],
    ) {
        let store = build_store(&raws);
        let blocked = |max_intermediate: usize, parallel: bool| {
            Engine::new(EngineConfig {
                max_intermediate,
                join_block_tuples: block,
                parallel_join: parallel,
                join_partitions: 3,
                parallelism: if parallel { 4 } else { 1 },
                shared_scan_pool: false,
                parallel_threshold: 0,
                parallel_join_min_work: 0,
                ..EngineConfig::default()
            })
        };
        for src in prefix_catalog() {
            let q = parse_query(src).unwrap();
            let full = blocked(usize::MAX >> 1, false).execute(&store, &q).unwrap();
            prop_assert!(!full.truncated, "reference run must be uncapped");
            let got = blocked(cap, false).execute(&store, &q).unwrap();
            prop_assert!(
                got.rows.len() <= full.rows.len()
                    && got.rows[..] == full.rows[..got.rows.len()],
                "query {:?} cap {} block {}: not an emission-order prefix ({} of {})",
                src, cap, block, got.rows.len(), full.rows.len()
            );
            prop_assert!(
                got.truncated || got.rows.len() == full.rows.len(),
                "query {:?} cap {} block {}: shortened result without the truncated flag",
                src, cap, block
            );
            let par = blocked(cap, true).execute(&store, &q).unwrap();
            prop_assert_eq!(
                (&got.rows, got.truncated),
                (&par.rows, par.truncated),
                "query {:?} cap {} block {}: serial and parallel capped drives diverged",
                src, cap, block
            );
        }
    }

    /// Memory governance: error mode reproduces the ungoverned result or
    /// fails with the structured budget error; partial mode always returns
    /// an emission-order prefix (with the trip surfaced as a warning).
    #[test]
    fn governed_blocked_drive_honours_budget_modes(
        raws in proptest::collection::vec(arb_raw(), 20..150),
        budget_bytes in 1u64..40_000,
        block in prop_oneof![Just(1usize), Just(7), Just(4096)],
    ) {
        let store = build_store(&raws);
        let engine = Engine::new(EngineConfig {
            join_block_tuples: block,
            ..EngineConfig::default()
        });
        for src in prefix_catalog() {
            let q = parse_query(src).unwrap();
            let full = engine.execute(&store, &q).unwrap();

            let strict = ExecBudget::unlimited().with_memory_bytes(budget_bytes);
            match engine.execute_with_budget(&store, &q, &strict) {
                Ok(t) => prop_assert_eq!(
                    &t.rows, &full.rows,
                    "query {:?} budget {}: untripped strict run diverged",
                    src, budget_bytes
                ),
                Err(e) => prop_assert_eq!(e, EngineError::MemoryBudget { budget_bytes }),
            }

            let partial = ExecBudget::unlimited()
                .with_memory_bytes(budget_bytes)
                .with_partial_results(true);
            let p = engine
                .execute_with_budget(&store, &q, &partial)
                .expect("partial mode never errors on a memory trip");
            prop_assert!(
                p.rows.len() <= full.rows.len()
                    && p.rows[..] == full.rows[..p.rows.len()],
                "query {:?} budget {} block {}: partial rows not an emission-order prefix",
                src, budget_bytes, block
            );
            if !p.warnings.is_empty() {
                prop_assert!(p.truncated, "a warned partial result must be flagged");
            }
        }
    }
}

/// Deterministic spot check: an emission-bound chain reports the new
/// demand counters through EXPLAIN ANALYZE stats, and the blocked drive
/// emits no more than the breadth-first bound.
#[test]
fn emission_counters_surface_in_stats() {
    let raws: Vec<RawEvent> = (0..600)
        .map(|i| {
            RawEvent::instant(
                AgentId(i % 4),
                // Pairwise-coprime moduli (3, 4, 5, 7) keep op, agent, proc,
                // and file decorrelated so the chain fans out.
                if i % 3 == 0 {
                    Operation::Write
                } else {
                    Operation::Read
                },
                EntitySpec::process(100 + (i % 5), &format!("exe{}.bin", i % 5), "user"),
                EntitySpec::file(&format!("/data/file{}", i % 7), "user"),
                Timestamp::from_secs(i64::from(i) * 3),
                u64::from(i),
            )
        })
        .collect();
    let store = build_store(&raws);
    let q = parse_query(
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           proc p2 write file f2 as e3
           with e1 before e2, e2 before e3
           return p1, p2, f2"#,
    )
    .unwrap();
    let aiql_lang::Query::Multievent(m) = q else {
        panic!()
    };
    let (full, _) = Engine::new(EngineConfig::default())
        .execute_multievent_with_stats(&store, &m)
        .unwrap();
    assert!(
        full.rows.len() > 16,
        "chain must fan out for this check, got {}",
        full.rows.len()
    );
    let engine = Engine::new(EngineConfig {
        // A cap below the full cardinality makes the chain emission-bound:
        // the output arena fills, the drive exits early, and the breadth
        // bound exceeds the demand-driven emission count.
        max_intermediate: full.rows.len() / 2,
        ..EngineConfig::default()
    });
    let (table, stats) = engine.execute_multievent_with_stats(&store, &m).unwrap();
    assert!(table.truncated, "the tight cap must truncate");
    let join = stats.ops.iter().find(|o| o.kind == "TemporalJoin").unwrap();
    assert!(join.runs_driven > 0, "blocked drive must report its runs");
    assert!(join.emitted_tuples > 0);
    assert!(
        join.emitted_tuples < join.breadth_bound_tuples,
        "an early-exiting drive must beat the breadth-first emission bound \
         ({} vs {})",
        join.emitted_tuples,
        join.breadth_bound_tuples
    );
    assert!(
        join.early_exit_depth.is_some(),
        "a truncated drive reports where it stopped"
    );
    let rendered = stats.render();
    assert!(
        rendered.contains("runs ") && rendered.contains("breadth bound"),
        "EXPLAIN ANALYZE must surface the emission counters:\n{rendered}"
    );
}
