//! Differential property tests for partition segment compaction (PR 4).
//!
//! A store ingested through tiny batch commits fragments every partition
//! into many small segments; compaction merges them into dense runs while
//! preserving the partition-global flat row addresses the engine's
//! `EventRef`s carry. Three stores built from identical raw streams —
//! fragmented (compaction off), explicitly compacted
//! (`EventStore::compact()`), and auto-compacted (the default commit-time
//! policy) — must return **byte-identical** tables for every query under
//! every engine flag combination, including the sharded parallel
//! join-index build.
//!
//! Also covered: compaction bumps only the merged partitions' epochs, so
//! plan-cache entries over untouched partitions survive an explicit
//! compaction (asserted through `Engine::plan_cache_counters`).

use aiql_engine::{Engine, EngineConfig};
use aiql_lang::parse_query;
use aiql_model::{AgentId, Operation, Timestamp};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};
use proptest::prelude::*;

fn arb_raw() -> impl Strategy<Value = RawEvent> {
    (
        0u32..3,
        prop_oneof![
            Just(Operation::Read),
            Just(Operation::Write),
            Just(Operation::Start),
            Just(Operation::Connect),
        ],
        0u32..5,
        0u32..6,
        0i64..5_000,
        0u64..2_000,
    )
        .prop_map(|(agent, op, subj, obj, secs, amount)| {
            let subject = EntitySpec::process(100 + subj, &format!("exe{subj}.bin"), "user");
            let object = match op {
                Operation::Read | Operation::Write => {
                    EntitySpec::file(&format!("/data/file{obj}"), "user")
                }
                Operation::Start => {
                    EntitySpec::process(200 + obj, &format!("child{obj}.bin"), "user")
                }
                _ => EntitySpec::tcp(
                    aiql_model::IpV4::from_octets(10, 0, 0, 1),
                    40_000,
                    aiql_model::IpV4::from_octets(10, 0, 4, 128 + (obj % 2) as u8),
                    443,
                ),
            };
            RawEvent::instant(
                AgentId(agent),
                op,
                subject,
                object,
                Timestamp::from_secs(secs),
                amount,
            )
        })
}

/// Queries covering single-pattern scans, multi-pattern joins (the sharded
/// index build), aggregation, and dictionary constraints.
fn query_catalog() -> Vec<&'static str> {
    vec![
        r#"proc p["%exe1.bin"] read file f as e return p, f"#,
        r#"proc p write file f as e return distinct p, f"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return p1, p2, f"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           proc p2 write file f2 as e3
           with e1 before e2, e2 before e3
           return count(e3.amount)"#,
        r#"proc p1 start proc p2["%child%"] as e1
           proc p1 write ip i as e2
           return p1, p2, i"#,
        r#"proc p write file f as e
           return p, count(e.amount) as n, sum(e.amount) as total
           group by p, f
           having n > 1
           order by n desc"#,
        r#"agentid = 1
           proc p read || write file f as e
           return p, f, e.amount
           limit 9"#,
    ]
}

/// Identical raw stream, identical tiny commit batches (so dedup sees the
/// same groups in all three stores) — only the physical layout differs.
fn build_stores(raws: &[RawEvent]) -> (EventStore, EventStore, EventStore) {
    let cfg = |compaction: bool| StoreConfig {
        time_bucket: aiql_model::Duration::from_mins(10),
        batch_size: 16,
        compaction,
        compaction_min_segments: 2,
        ..StoreConfig::default()
    };
    let mut fragmented = EventStore::new(cfg(false));
    fragmented.ingest_all(raws);
    let mut compacted = EventStore::new(cfg(false));
    compacted.ingest_all(raws);
    compacted.compact();
    let mut auto = EventStore::new(cfg(true));
    auto.ingest_all(raws);
    (fragmented, compacted, auto)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every engine flag combination ⟨late_materialization, parallel_join
    /// (forced sharded build), plan_cache, compiled_projection⟩ returns
    /// byte-identical tables on fragmented, explicitly compacted, and
    /// auto-compacted stores — on first execution and the cache-hitting
    /// second round.
    #[test]
    fn fragmented_and_compacted_stores_agree_under_all_flags(
        raws in proptest::collection::vec(arb_raw(), 0..120),
        flags in 0u32..16,
    ) {
        let late_materialization = flags & 1 != 0;
        let parallel_join = flags & 2 != 0;
        let plan_cache = flags & 4 != 0;
        let compiled_projection = flags & 8 != 0;
        let (fragmented, compacted, auto) = build_stores(&raws);
        if !raws.is_empty() {
            let f = fragmented.stats();
            prop_assert!(f.segments >= f.partitions);
            let c = compacted.stats();
            prop_assert_eq!(c.segments, c.partitions, "compact() leaves dense runs");
        }
        let engine = Engine::new(EngineConfig {
            parallelism: 2,
            late_materialization,
            parallel_join,
            // Non-zero forces the frontier partitioning AND the sharded
            // index build on tiny inputs.
            join_partitions: if parallel_join { 3 } else { 0 },
            plan_cache,
            compiled_projection,
            ..EngineConfig::default()
        });
        for src in query_catalog() {
            let q = parse_query(src).unwrap();
            let want = engine.execute(&fragmented, &q).unwrap();
            for (name, store) in [("compacted", &compacted), ("auto", &auto)] {
                for round in 0..2 {
                    let got = engine.execute(store, &q).unwrap();
                    prop_assert_eq!(
                        &want.rows, &got.rows,
                        "query {:?} flags {:04b} store {} round {}: rows/order differ",
                        src, flags, name, round
                    );
                    prop_assert_eq!(want.truncated, got.truncated);
                    prop_assert_eq!(&want.columns, &got.columns);
                }
            }
        }
    }

    /// Compacting mid-investigation changes no results: the same engine
    /// (warm plan cache) must see identical tables before and after an
    /// explicit `compact()` of its store.
    #[test]
    fn compaction_under_warm_cache_is_invisible(
        raws in proptest::collection::vec(arb_raw(), 1..100),
    ) {
        let (mut fragmented, _, _) = build_stores(&raws);
        let engine = Engine::new(EngineConfig::default());
        let mut before = Vec::new();
        for src in query_catalog() {
            before.push(engine.execute_text(&fragmented, src).unwrap());
        }
        fragmented.compact();
        for (src, want) in query_catalog().into_iter().zip(&before) {
            let got = engine.execute_text(&fragmented, src).unwrap();
            prop_assert_eq!(&want.rows, &got.rows, "post-compaction {:?}", src);
        }
    }
}

/// The join's `OpStat` carries the build-vs-probe timing split (satellite
/// of the sharded index build): both phases must be timed on a join query,
/// and scans must not report them.
#[test]
fn join_stats_split_build_and_probe_time() {
    let mut raws = Vec::new();
    for i in 0..200i64 {
        raws.push(RawEvent::instant(
            AgentId(1),
            Operation::Write,
            EntitySpec::process(1, "w.exe", "u"),
            EntitySpec::file(&format!("/f{}", i % 4), "u"),
            Timestamp::from_secs(i),
            1,
        ));
        raws.push(RawEvent::instant(
            AgentId(1),
            Operation::Read,
            EntitySpec::process(2, "r.exe", "u"),
            EntitySpec::file(&format!("/f{}", i % 4), "u"),
            Timestamp::from_secs(i + 1),
            1,
        ));
    }
    let mut store = EventStore::default();
    store.ingest_all(&raws);
    let q = parse_query(
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return count(e2.amount)"#,
    )
    .unwrap();
    let aiql_lang::Query::Multievent(m) = &q else {
        panic!("multievent query");
    };
    for join_partitions in [0usize, 4] {
        let engine = Engine::new(EngineConfig {
            parallelism: 2,
            join_partitions,
            shared_scan_pool: false,
            ..EngineConfig::default()
        });
        let (_, stats) = engine.execute_multievent_with_stats(&store, m).unwrap();
        let join = stats
            .ops
            .iter()
            .find(|o| o.kind == "TemporalJoin")
            .expect("join ran");
        assert!(join.build_nanos > 0, "index build must be timed");
        assert!(join.probe_nanos > 0, "probe must be timed");
        assert!(
            join.build_nanos + join.probe_nanos <= join.nanos + 1_000,
            "split must nest inside the operator time"
        );
        for scan in stats.ops.iter().filter(|o| o.kind == "PatternScan") {
            assert_eq!((scan.build_nanos, scan.probe_nanos), (0, 0));
        }
    }
}

/// Day-0 partition stays dense (one commit); day-2 partition fragments
/// across five commits. Compacting merges only day 2, so a cached plan
/// windowed to day 0 survives — hits grow, misses don't.
#[test]
fn plan_cache_survives_compaction_of_unread_partitions() {
    let mut store = EventStore::new(StoreConfig {
        compaction: false,
        dedup: false,
        ..StoreConfig::default()
    });
    store.ingest_all(&[RawEvent::instant(
        AgentId(1),
        Operation::Write,
        EntitySpec::process(7, "svc.exe", "svc"),
        EntitySpec::file("/day0/data", "svc"),
        Timestamp::from_secs(60),
        5,
    )]);
    for i in 0..5 {
        store.ingest_all(&[RawEvent::instant(
            AgentId(1),
            Operation::Write,
            EntitySpec::process(7, "svc.exe", "svc"),
            EntitySpec::file("/day2/data", "svc"),
            Timestamp::from_secs(2 * 86_400 + i * 60),
            5,
        )]);
    }
    let epochs_before = store.partition_epochs();
    let engine = Engine::new(EngineConfig::default());
    let query = r#"(at "01/01/1970") proc p["%svc.exe"] write file f as e return p, f"#;
    let first = engine.execute_text(&store, query).expect("day-0 query");
    assert!(!first.rows.is_empty());
    engine.execute_text(&store, query).expect("day-0 query");
    let (h1, m1) = engine.plan_cache_counters();
    assert!(h1 > 0 && m1 > 0);

    let report = store.compact();
    assert_eq!(report.partitions_compacted, 1, "only day 2 is fragmented");
    // Only the merged partition's epoch moved.
    for ((key, before), (_, after)) in epochs_before.iter().zip(store.partition_epochs()) {
        if key.bucket == 0 {
            assert_eq!(*before, after, "day-0 epoch untouched");
        } else {
            assert!(after > *before, "day-2 epoch bumped");
        }
    }

    let again = engine.execute_text(&store, query).expect("day-0 query");
    let (h2, m2) = engine.plan_cache_counters();
    assert_eq!(again.rows, first.rows);
    assert!(
        h2 > h1,
        "cached day-0 plan must survive compaction of day 2 ({h1} -> {h2} hits)"
    );
    assert_eq!(m2, m1, "no entry may be recomputed");

    // A query over the compacted partition *is* recomputed (its epochs
    // moved) and still answers identically to an uncached engine.
    let day2 = r#"(at "01/03/1970") proc p["%svc.exe"] write file f as e return p, f"#;
    let warm = engine.execute_text(&store, day2).expect("day-2 query");
    let fresh = Engine::new(EngineConfig {
        plan_cache: false,
        ..EngineConfig::default()
    });
    let want = fresh.execute_text(&store, day2).expect("day-2 query");
    assert_eq!(warm.rows, want.rows);
}
