//! Property-based equivalence: the fully optimized executor (pruning-power
//! scheduling + semi-join pushdown + temporal narrowing + partition
//! parallelism) must return exactly the rows of the brute-force reference
//! executor for arbitrary stores and a family of generated queries.

use aiql_engine::reference;
use aiql_engine::{analyze_multievent, Engine, EngineConfig};
use aiql_lang::parse_query;
use aiql_model::{AgentId, Operation, Timestamp};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};
use proptest::prelude::*;

fn arb_raw() -> impl Strategy<Value = RawEvent> {
    (
        0u32..3,
        prop_oneof![
            Just(Operation::Read),
            Just(Operation::Write),
            Just(Operation::Start),
            Just(Operation::Connect),
        ],
        0u32..5,
        0u32..6,
        0i64..5_000,
        0u64..2_000,
    )
        .prop_map(|(agent, op, subj, obj, secs, amount)| {
            let subject = EntitySpec::process(100 + subj, &format!("exe{subj}.bin"), "user");
            let object = match op {
                Operation::Read | Operation::Write => {
                    EntitySpec::file(&format!("/data/file{obj}"), "user")
                }
                Operation::Start => {
                    EntitySpec::process(200 + obj, &format!("child{obj}.bin"), "user")
                }
                _ => EntitySpec::tcp(
                    aiql_model::IpV4::from_octets(10, 0, 0, 1),
                    40_000,
                    aiql_model::IpV4::from_octets(10, 0, 4, 128 + (obj % 2) as u8),
                    443,
                ),
            };
            RawEvent::instant(
                AgentId(agent),
                op,
                subject,
                object,
                Timestamp::from_secs(secs),
                amount,
            )
        })
}

/// A family of queries exercising joins, shared variables, temporal
/// relations, global constraints, and op alternatives.
fn query_catalog() -> Vec<&'static str> {
    vec![
        // Single pattern, entity pattern constraint.
        r#"proc p["%exe1.bin"] read file f as e return p, f"#,
        // Shared file variable across two patterns (implicit join).
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return distinct p1, p2, f"#,
        // Three patterns with a temporal chain and an IP constraint.
        r#"proc p1 start proc p2 as e1
           proc p2 write file f as e2
           proc p2 write ip i[dstip = "10.0.4.129"] as e3
           with e1 before e2, e2 before e3
           return p1, p2, f, i"#,
        // Spatial constraint + op alternatives.
        r#"agentid = 1
           proc p read || write file f as e
           return distinct p, f"#,
        // Aggregation with group by and having.
        r#"proc p write file f as e
           return p, count(e.amount) as n, sum(e.amount) as total
           group by p
           having n > 1"#,
        // Temporal bound.
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before[10 min] e2
           return p1, p2"#,
        // Self-relation via shared subject (same proc writes two files).
        r#"proc p write file f1["%file1"] as e1
           proc p write file f2["%file2"] as e2
           return distinct p"#,
    ]
}

fn build_store(raws: &[RawEvent]) -> EventStore {
    let mut store = EventStore::new(StoreConfig {
        time_bucket: aiql_model::Duration::from_mins(10),
        dedup: false, // keep every generated event so the oracle is simple
        ..StoreConfig::default()
    });
    store.ingest_all(raws);
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Optimized executor == brute-force oracle, on every catalog query.
    #[test]
    fn optimized_matches_reference(raws in proptest::collection::vec(arb_raw(), 0..120)) {
        let store = build_store(&raws);
        let engine = Engine::new(EngineConfig::default());
        for src in query_catalog() {
            let q = parse_query(src).unwrap();
            let aiql_lang::Query::Multievent(m) = &q else { panic!() };
            let analyzed = analyze_multievent(m, &store).unwrap();
            let fast = engine.execute(&store, &q).unwrap().normalized();
            let slow = reference::run_reference(&store, &analyzed).unwrap().normalized();
            prop_assert_eq!(
                &fast.rows, &slow.rows,
                "query {} differs: fast {} rows, slow {} rows",
                src, fast.rows.len(), slow.rows.len()
            );
        }
    }

    /// Every single optimization toggled off must still be correct.
    #[test]
    fn each_config_matches_reference(raws in proptest::collection::vec(arb_raw(), 0..80),
                                     which in 0usize..6) {
        let store = build_store(&raws);
        let mut config = EngineConfig::default();
        match which {
            0 => config.prioritize_pruning = false,
            1 => config.partition_parallel = false,
            2 => config.semi_join_pushdown = false,
            3 => config.temporal_narrowing = false,
            4 => config.entity_pushdown = false,
            _ => config = EngineConfig::unoptimized(),
        }
        let engine = Engine::new(config);
        let src = r#"proc p1 write file f as e1
                     proc p2 read file f as e2
                     with e1 before e2
                     return distinct p1, p2, f"#;
        let q = parse_query(src).unwrap();
        let aiql_lang::Query::Multievent(m) = &q else { panic!() };
        let analyzed = analyze_multievent(m, &store).unwrap();
        let fast = engine.execute(&store, &q).unwrap().normalized();
        let slow = reference::run_reference(&store, &analyzed).unwrap().normalized();
        prop_assert_eq!(&fast.rows, &slow.rows);
    }

    /// Anomaly execution is deterministic and its rows satisfy the having
    /// filter semantics (spot-checked via count aggregates).
    #[test]
    fn anomaly_rows_respect_having(raws in proptest::collection::vec(arb_raw(), 1..100)) {
        let store = build_store(&raws);
        let engine = Engine::new(EngineConfig::default());
        let src = r#"window = 100 sec, step = 50 sec
                     proc p write ip i as evt
                     return p, count(evt.amount) as n
                     group by p
                     having n >= 1"#;
        let table = engine.execute_text(&store, src).unwrap();
        for row in &table.rows {
            let n = row[1].as_i64().unwrap();
            prop_assert!(n >= 1);
        }
        // Deterministic across runs.
        let again = engine.execute_text(&store, src).unwrap();
        prop_assert_eq!(table.normalized().rows, again.normalized().rows);
    }
}
