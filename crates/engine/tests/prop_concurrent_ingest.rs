//! Differential property tests for the concurrent ingest/query core (PR 9).
//!
//! A live store driven through the [`SharedStore`] write path — novelty
//! overlay absorbing small commits, threshold flushes, background-deferred
//! compaction, explicit flush/compact maintenance at random points — must
//! answer every query **byte-identically** to a stop-the-world reference
//! store that sealed each commit serially and never compacted. Queries run
//! against pinned snapshots, exactly like the service path; the program of
//! ingest/query/flush/compact operations is randomized, as is the engine
//! flag cube ⟨late_materialization, parallel_join, plan_cache,
//! background_compaction⟩ and the overlay flush threshold.
//!
//! Also covered: plan-cache counters stay consistent across epoch bumps —
//! re-running a query against the *same* pinned snapshot never misses
//! (epochs unchanged ⇒ the first round's resolutions are still valid),
//! while writes in between are free to invalidate.

use aiql_engine::{Engine, EngineConfig};
use aiql_lang::parse_query;
use aiql_model::{AgentId, Operation, Timestamp};
use aiql_storage::{EntitySpec, EventStore, RawEvent, SharedStore, StoreConfig};
use proptest::prelude::*;

fn arb_raw() -> impl Strategy<Value = RawEvent> {
    (
        0u32..3,
        prop_oneof![
            Just(Operation::Read),
            Just(Operation::Write),
            Just(Operation::Start),
            Just(Operation::Connect),
        ],
        0u32..5,
        0u32..6,
        0i64..5_000,
        0u64..2_000,
    )
        .prop_map(|(agent, op, subj, obj, secs, amount)| {
            let subject = EntitySpec::process(100 + subj, &format!("exe{subj}.bin"), "user");
            let object = match op {
                Operation::Read | Operation::Write => {
                    EntitySpec::file(&format!("/data/file{obj}"), "user")
                }
                Operation::Start => {
                    EntitySpec::process(200 + obj, &format!("child{obj}.bin"), "user")
                }
                _ => EntitySpec::tcp(
                    aiql_model::IpV4::from_octets(10, 0, 0, 1),
                    40_000,
                    aiql_model::IpV4::from_octets(10, 0, 4, 128 + (obj % 2) as u8),
                    443,
                ),
            };
            RawEvent::instant(
                AgentId(agent),
                op,
                subject,
                object,
                Timestamp::from_secs(secs),
                amount,
            )
        })
}

/// Queries covering scans, joins, aggregation, and dictionary constraints.
fn query_catalog() -> Vec<&'static str> {
    vec![
        r#"proc p["%exe1.bin"] read file f as e return p, f"#,
        r#"proc p write file f as e return distinct p, f"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return p1, p2, f"#,
        r#"proc p write file f as e
           return p, count(e.amount) as n, sum(e.amount) as total
           group by p, f
           having n > 1
           order by n desc"#,
        r#"agentid = 1
           proc p read || write file f as e
           return p, f, e.amount
           limit 9"#,
    ]
}

/// One step of the randomized ingest/query/maintenance interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Commit a batch through both write paths.
    Ingest(Vec<RawEvent>),
    /// Run one catalog query against a pinned snapshot and diff it.
    Query(usize),
    /// Seal every live overlay (maintenance; invisible to queries).
    Flush,
    /// Explicitly compact the live store (maintenance; invisible too).
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Ingest and query dominate; flush/compact are occasional maintenance.
    (
        0u32..8,
        proptest::collection::vec(arb_raw(), 1..12),
        0usize..5,
    )
        .prop_map(|(kind, batch, query)| match kind {
            0..=2 => Op::Ingest(batch),
            3..=5 => Op::Query(query),
            6 => Op::Flush,
            _ => Op::Compact,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings of ingest batches, snapshot queries, novelty
    /// flushes, and compaction agree byte for byte with the stop-the-world
    /// reference, across the engine flag cube; identical reruns on a
    /// pinned snapshot never miss the plan cache.
    #[test]
    fn interleaved_ingest_matches_stop_the_world_reference(
        ops in proptest::collection::vec(arb_op(), 1..24),
        flags in 0u32..16,
        flush_rows in 4usize..24,
    ) {
        let late_materialization = flags & 1 != 0;
        let parallel_join = flags & 2 != 0;
        let plan_cache = flags & 4 != 0;
        let background_compaction = flags & 8 != 0;
        let bucket = aiql_model::Duration::from_mins(10);
        // Live: overlay on, auto-compaction (deferred when the flag says
        // so — no executor is wired, so deferred merges drain inline right
        // after each publish, off the commit's critical section).
        let live = SharedStore::new(EventStore::new(StoreConfig {
            time_bucket: bucket,
            batch_size: 16,
            compaction_min_segments: 2,
            novelty_flush_rows: flush_rows,
            background_compaction,
            ..StoreConfig::default()
        }));
        // Reference: seal-per-commit, never compacted — the layout the
        // seed produced. Logical results must not depend on layout.
        let mut reference = EventStore::new(StoreConfig {
            time_bucket: bucket,
            batch_size: 16,
            compaction: false,
            ..StoreConfig::default()
        });
        let engine = Engine::new(EngineConfig {
            parallelism: 2,
            late_materialization,
            parallel_join,
            join_partitions: if parallel_join { 3 } else { 0 },
            plan_cache,
            ..EngineConfig::default()
        });
        let catalog = query_catalog();
        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Ingest(batch) => {
                    live.write(|s| s.ingest_all(batch));
                    reference.ingest_all(batch);
                }
                Op::Flush => live.write(|s| {
                    s.flush_novelty();
                }),
                Op::Compact => live.write(|s| {
                    s.compact();
                }),
                Op::Query(i) => {
                    let q = parse_query(catalog[*i]).unwrap();
                    let want = engine.execute(&reference, &q).unwrap();
                    let snap = live.snapshot();
                    let first = engine.execute(&snap, &q).unwrap();
                    prop_assert_eq!(
                        &want.rows, &first.rows,
                        "step {} query {:?} flags {:04b}: overlay path diverged",
                        step, catalog[*i], flags
                    );
                    prop_assert_eq!(&want.columns, &first.columns);
                    prop_assert_eq!(want.truncated, first.truncated);
                    // Same pinned snapshot, same epochs: the rerun must
                    // not add plan-cache misses.
                    let (_, misses_before) = engine.plan_cache_counters();
                    let second = engine.execute(&snap, &q).unwrap();
                    let (_, misses_after) = engine.plan_cache_counters();
                    prop_assert_eq!(&first.rows, &second.rows);
                    if plan_cache {
                        prop_assert_eq!(
                            misses_after, misses_before,
                            "identical rerun on a pinned snapshot missed the cache"
                        );
                    }
                }
            }
        }
        // Final maintenance barrier: flush + compact everything, then every
        // catalog query must still agree.
        live.write(|s| {
            s.flush_novelty();
            s.compact();
        });
        for src in catalog {
            let q = parse_query(src).unwrap();
            let want = engine.execute(&reference, &q).unwrap();
            let got = live.read(|s| engine.execute(s, &q)).unwrap();
            prop_assert_eq!(
                &want.rows, &got.rows,
                "post-maintenance {:?} flags {:04b}",
                src, flags
            );
        }
    }
}
