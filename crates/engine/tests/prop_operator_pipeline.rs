//! Differential property tests for the operator pipeline (PR 3).
//!
//! The executor now runs a physical operator tree (`SemiJoinNarrow →
//! PatternScan` per pattern, `TemporalJoin`, `Project`/`Aggregate`) and the
//! multi-way join can partition its tuple frontier across the shared scan
//! executor. Three invariants:
//!
//! * the **parallel join** returns tables byte-identical (rows AND order,
//!   truncation flag included) to the serial join, at any thread count and
//!   partition count — including when `max_intermediate` truncates the
//!   frontier;
//! * the **operator pipeline** returns tables byte-identical to the seed's
//!   materializing pipeline under every flag combination;
//! * the **partition-scoped plan cache** stays correct under concurrent
//!   ingest: results always match a cache-free engine, and ingest into a
//!   partition a cached plan never read does not evict it.

use aiql_engine::{Engine, EngineConfig};
use aiql_lang::parse_query;
use aiql_model::{AgentId, Operation, Timestamp};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};
use proptest::prelude::*;

fn arb_raw() -> impl Strategy<Value = RawEvent> {
    (
        0u32..3,
        prop_oneof![
            Just(Operation::Read),
            Just(Operation::Write),
            Just(Operation::Start),
            Just(Operation::Connect),
        ],
        0u32..4,
        0u32..4,
        0i64..5_000,
        0u64..2_000,
    )
        .prop_map(|(agent, op, subj, obj, secs, amount)| {
            let subject = EntitySpec::process(100 + subj, &format!("exe{subj}.bin"), "user");
            let object = match op {
                Operation::Read | Operation::Write => {
                    // A small file universe makes the joins fan out.
                    EntitySpec::file(&format!("/data/file{obj}"), "user")
                }
                Operation::Start => {
                    EntitySpec::process(200 + obj, &format!("child{obj}.bin"), "user")
                }
                _ => EntitySpec::tcp(
                    aiql_model::IpV4::from_octets(10, 0, 0, 1),
                    40_000,
                    aiql_model::IpV4::from_octets(10, 0, 4, 128 + (obj % 2) as u8),
                    443,
                ),
            };
            RawEvent::instant(
                AgentId(agent),
                op,
                subject,
                object,
                Timestamp::from_secs(secs),
                amount,
            )
        })
}

/// Join-heavy queries: multi-pattern chains over a small entity universe,
/// truncation-sensitive orders, aggregation.
fn query_catalog() -> Vec<&'static str> {
    vec![
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return p1, p2, f"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           proc p2 write file f2 as e3
           proc p3 read file f2 as e4
           with e1 before e2, e2 before e3, e3 before e4
           return p1, p3, f, f2"#,
        r#"proc p1 start proc p2 as e1
           proc p2 write file f as e2
           proc p2 write ip i as e3
           with e1 before e2, e2 before e3
           return p1, p2, f, i"#,
        r#"proc p write file f as e
           return p, count(e.amount) as n, sum(e.amount) as total
           group by p"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           return distinct p1, p2"#,
    ]
}

fn build_store(raws: &[RawEvent]) -> EventStore {
    let mut store = EventStore::new(StoreConfig {
        time_bucket: aiql_model::Duration::from_mins(10),
        dedup: false,
        ..StoreConfig::default()
    });
    store.ingest_all(raws);
    store
}

/// The serial-join reference engine (operator pipeline, no join fan-out).
fn serial_config() -> EngineConfig {
    EngineConfig {
        parallel_join: false,
        ..EngineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel and serial joins agree byte-for-byte across thread counts
    /// 1/2/8, partition counts, and `max_intermediate` truncation.
    #[test]
    fn parallel_join_matches_serial_exactly(
        raws in proptest::collection::vec(arb_raw(), 1..150),
        threads in prop_oneof![Just(1usize), Just(2), Just(8)],
        partitions in prop_oneof![Just(1usize), Just(2), Just(3), Just(8)],
        max_intermediate in prop_oneof![
            Just(1usize), Just(2), Just(7), Just(100), Just(4_000_000)
        ],
    ) {
        let store = build_store(&raws);
        let serial = Engine::new(EngineConfig {
            max_intermediate,
            ..serial_config()
        });
        let parallel = Engine::new(EngineConfig {
            parallelism: threads,
            parallel_join: true,
            join_partitions: partitions,
            // Private pool of the requested width, so thread counts are
            // what the test says they are.
            shared_scan_pool: false,
            parallel_threshold: 0,
            max_intermediate,
            ..EngineConfig::default()
        });
        for src in query_catalog() {
            let q = parse_query(src).unwrap();
            let want = serial.execute(&store, &q).unwrap();
            let got = parallel.execute(&store, &q).unwrap();
            prop_assert_eq!(
                &want.rows, &got.rows,
                "query {:?} threads {} partitions {} max {}: rows/order differ ({} vs {})",
                src, threads, partitions, max_intermediate,
                want.rows.len(), got.rows.len()
            );
            prop_assert_eq!(
                want.truncated, got.truncated,
                "query {:?} threads {} partitions {} max {}: truncation flag differs",
                src, threads, partitions, max_intermediate
            );
        }
    }

    /// The operator pipeline returns tables byte-identical to the seed's
    /// materializing pipeline under every flag combination of
    /// ⟨late_materialization, parallel_join, scan_pool, shared_scan_pool,
    /// compiled_projection⟩.
    #[test]
    fn operator_pipeline_matches_seed_pipeline(
        raws in proptest::collection::vec(arb_raw(), 0..120),
        flags in 0u32..32,
    ) {
        let late_materialization = flags & 1 != 0;
        let parallel_join = flags & 2 != 0;
        let scan_pool = flags & 4 != 0;
        let shared_scan_pool = flags & 8 != 0;
        let compiled_projection = flags & 16 != 0;

        let store = build_store(&raws);
        let seed = Engine::new(EngineConfig {
            late_materialization: false,
            scan_pool: false,
            parallel_join: false,
            ..EngineConfig::default()
        });
        let variant = Engine::new(EngineConfig {
            late_materialization,
            parallel_join,
            scan_pool,
            shared_scan_pool,
            compiled_projection,
            join_partitions: 3,
            parallelism: 4,
            parallel_threshold: 0,
            ..EngineConfig::default()
        });
        for src in query_catalog() {
            let q = parse_query(src).unwrap();
            let want = seed.execute(&store, &q).unwrap();
            let got = variant.execute(&store, &q).unwrap();
            prop_assert_eq!(
                &want.rows, &got.rows,
                "query {:?} flags {:05b}: rows/order differ ({} vs {})",
                src, flags, want.rows.len(), got.rows.len()
            );
            prop_assert_eq!(want.truncated, got.truncated);
        }
    }

    /// The probe-reduction layers (PR 8) return tables byte-identical to
    /// the layers-off serial join across the whole flag cube: time-bucket
    /// × partitioned-probe × sideways-filter × serial/parallel drive ×
    /// truncating `max_intermediate`. Bounded `before[...]` relations make
    /// the bucket ranges finite on both sides.
    #[test]
    fn probe_layers_match_layers_off_exactly(
        raws in proptest::collection::vec(arb_raw(), 1..150),
        flags in 0u32..16,
        max_intermediate in prop_oneof![
            Just(1usize), Just(2), Just(7), Just(100), Just(4_000_000)
        ],
    ) {
        let time_bucket_join = flags & 1 != 0;
        let partitioned_probe = flags & 2 != 0;
        let sideways_filters = flags & 4 != 0;
        let parallel_join = flags & 8 != 0;
        let store = build_store(&raws);
        let reference = Engine::new(EngineConfig {
            max_intermediate,
            time_bucket_join: false,
            partitioned_probe: false,
            sideways_filters: false,
            ..serial_config()
        });
        let variant = Engine::new(EngineConfig {
            max_intermediate,
            time_bucket_join,
            partitioned_probe,
            sideways_filters,
            parallel_join,
            join_partitions: 3,
            parallelism: 4,
            shared_scan_pool: false,
            parallel_threshold: 0,
            ..EngineConfig::default()
        });
        let mut catalog = query_catalog();
        catalog.push(
            r#"proc p1 write file f as e1
               proc p2 read file f as e2
               proc p2 write file f2 as e3
               with e1 before[10 min] e2, e2 before[30 min] e3
               return p1, p2, f, f2"#,
        );
        catalog.push(
            r#"proc p1 write file f as e1
               proc p2 read file f as e2
               with e2 after[20 min] e1
               return p1, p2, f"#,
        );
        for src in catalog {
            let q = parse_query(src).unwrap();
            let want = reference.execute(&store, &q).unwrap();
            let got = variant.execute(&store, &q).unwrap();
            prop_assert_eq!(
                &want.rows, &got.rows,
                "query {:?} flags {:04b} max {}: rows/order differ ({} vs {})",
                src, flags, max_intermediate, want.rows.len(), got.rows.len()
            );
            prop_assert_eq!(
                want.truncated, got.truncated,
                "query {:?} flags {:04b} max {}: truncation flag differs",
                src, flags, max_intermediate
            );
        }
    }

    /// Plan-cached engines stay correct while the store is mutated between
    /// executions (partition-scoped invalidation must never serve stale
    /// estimates or resolutions).
    #[test]
    fn plan_cache_correct_under_ingest(
        rounds in proptest::collection::vec(
            proptest::collection::vec(arb_raw(), 1..40), 2..5
        ),
    ) {
        let mut store = build_store(&rounds[0]);
        let cached = Engine::new(EngineConfig {
            parallel_threshold: 0,
            ..EngineConfig::default()
        });
        let uncached = Engine::new(EngineConfig {
            plan_cache: false,
            ..EngineConfig::default()
        });
        for round in &rounds[1..] {
            for src in query_catalog() {
                let q = parse_query(src).unwrap();
                let want = uncached.execute(&store, &q).unwrap();
                let got = cached.execute(&store, &q).unwrap();
                prop_assert_eq!(&want.rows, &got.rows, "query {:?}", src);
            }
            store.ingest_all(round);
        }
    }
}

/// Deterministic checks: per-operator statistics are populated, and a
/// plan-cache hit survives ingest into a partition the plan never read.
#[test]
fn run_with_stats_reports_per_operator_timings() {
    let raws: Vec<RawEvent> = (0..3_000)
        .map(|i| {
            RawEvent::instant(
                AgentId(i % 4),
                if i % 3 == 0 {
                    Operation::Write
                } else {
                    Operation::Read
                },
                EntitySpec::process(100 + (i % 5), &format!("exe{}.bin", i % 5), "user"),
                EntitySpec::file(&format!("/data/file{}", i % 7), "user"),
                Timestamp::from_secs(i64::from(i) * 3),
                u64::from(i),
            )
        })
        .collect();
    let store = build_store(&raws);
    let engine = Engine::new(EngineConfig {
        parallelism: 4,
        parallel_threshold: 0,
        join_partitions: 4,
        ..EngineConfig::default()
    });
    let q = parse_query(
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return p1, p2, f"#,
    )
    .unwrap();
    let aiql_lang::Query::Multievent(m) = q else {
        panic!()
    };
    let (table, stats) = engine.execute_multievent_with_stats(&store, &m).unwrap();
    assert!(!table.rows.is_empty());

    // One operator chain per pattern + join + projection, in execution
    // order: narrow, scan, narrow, scan, join, project.
    let kinds: Vec<&str> = stats.ops.iter().map(|o| o.kind).collect();
    assert_eq!(
        kinds,
        [
            "SemiJoinNarrow",
            "PatternScan",
            "SemiJoinNarrow",
            "PatternScan",
            "TemporalJoin",
            "Project"
        ]
    );
    for op in &stats.ops {
        assert!(op.nanos > 0, "{} must be timed", op.kind);
        assert!(op.fanout >= 1);
    }
    let scans: Vec<_> = stats
        .ops
        .iter()
        .filter(|o| o.kind == "PatternScan")
        .collect();
    assert!(scans.iter().all(|o| o.rows_out > 0), "scans fetched tuples");
    assert_eq!(
        scans.iter().map(|o| o.rows_out).sum::<usize>(),
        stats.fetched.iter().sum::<usize>(),
        "per-operator and per-pattern fetch counts agree"
    );
    let join = stats.ops.iter().find(|o| o.kind == "TemporalJoin").unwrap();
    assert!(join.rows_in > 0);
    assert_eq!(join.rows_out, stats.tuples);
    assert!(join.fanout > 1, "forced join partitions must be used");
    let project = stats.ops.iter().find(|o| o.kind == "Project").unwrap();
    assert_eq!(project.rows_in, stats.tuples);
    assert_eq!(project.rows_out, table.rows.len());
}

#[test]
fn plan_cache_hit_survives_ingest_into_untouched_partition() {
    // Day-0 store; the query reads only day 0.
    let day = 86_400i64;
    let mk = |secs: i64| {
        RawEvent::instant(
            AgentId(1),
            Operation::Write,
            EntitySpec::process(1, "sqlservr.exe", "mssql"),
            EntitySpec::file("/data/f0", "mssql"),
            Timestamp::from_secs(secs),
            100,
        )
    };
    let mut store = EventStore::default();
    store.ingest_all(&(0..50).map(|i| mk(i * 60)).collect::<Vec<_>>());
    let engine = Engine::new(EngineConfig::default());
    let src = r#"(at "01/01/1970") proc p["%sqlservr.exe"] write file f as e return p, f"#;
    let q = parse_query(src).unwrap();

    let first = engine.execute(&store, &q).unwrap();
    let (h0, m0) = engine.plan_cache_counters();
    assert!(m0 > 0, "first execution must populate the cache");
    engine.execute(&store, &q).unwrap();
    let (h1, m1) = engine.plan_cache_counters();
    assert!(h1 > h0, "repeat execution must hit");
    assert_eq!(m1, m0);

    // Ingest two days later with already-interned entities: new partition,
    // unchanged dictionary, day-0 buckets untouched.
    store.ingest_all(&[mk(2 * day)]);
    let after = engine.execute(&store, &q).unwrap();
    let (h2, m2) = engine.plan_cache_counters();
    assert!(
        h2 > h1,
        "cached plan must survive ingest into an untouched partition"
    );
    assert_eq!(m2, m1, "no cache entry may be recomputed");
    assert_eq!(after.rows, first.rows, "day-0 results unchanged");

    // Ingest into day 0: the cached estimate must now be recomputed and
    // the new event must show up.
    store.ingest_all(&[mk(30)]);
    let touched = engine.execute(&store, &q).unwrap();
    let (_, m3) = engine.plan_cache_counters();
    assert!(m3 > m2, "ingest into a read partition must recompute");
    assert_eq!(touched.rows.len(), first.rows.len() + 1);
}

/// Time-bucket pruning is purely an acceleration: on clustered ("bursty")
/// data with bounded temporal relations it must skip whole bucket ranges
/// (visible in the join's operator stats) while never dropping a tuple the
/// exact `temporal_ok_refs` check would admit.
#[test]
fn time_bucket_pruning_drops_no_admissible_tuple() {
    // Six bursts of activity far apart in time on one host and one file;
    // within a burst events are seconds apart, so a `before[10 min]`
    // bound admits only same-burst pairs. Single-host ingest keeps
    // candidate lists in time order, so posting chunks cover disjoint
    // bursts and the bucket grid can skip the other bursts' chunks.
    let raws: Vec<RawEvent> = (0..360)
        .map(|i| {
            let burst = i / 60;
            let base = i64::from(burst) * 100_000;
            RawEvent::instant(
                AgentId(0),
                if i % 2 == 0 {
                    Operation::Write
                } else {
                    Operation::Read
                },
                EntitySpec::process(100 + (i % 5), &format!("exe{}.bin", i % 5), "user"),
                EntitySpec::file("/data/file0", "user"),
                Timestamp::from_secs(base + i64::from(i % 60) * 7),
                u64::from(i),
            )
        })
        .collect();
    let store = build_store(&raws);
    let q = parse_query(
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           proc p2 write file f2 as e3
           with e1 before[10 min] e2, e2 before[10 min] e3
           return p1, p2, f, f2"#,
    )
    .unwrap();
    let aiql_lang::Query::Multievent(m) = q else {
        panic!()
    };

    let timed = Engine::new(serial_config());
    let untimed = Engine::new(EngineConfig {
        time_bucket_join: false,
        ..serial_config()
    });
    let (rows_timed, stats) = timed.execute_multievent_with_stats(&store, &m).unwrap();
    let (rows_untimed, _) = untimed.execute_multievent_with_stats(&store, &m).unwrap();
    assert!(!rows_timed.rows.is_empty(), "query must match something");
    assert_eq!(
        rows_timed.rows, rows_untimed.rows,
        "bucket pruning must not change results"
    );

    let join = stats.ops.iter().find(|o| o.kind == "TemporalJoin").unwrap();
    assert!(
        join.bucket_skipped > 0,
        "bursty data with bounded relations must skip bucket ranges"
    );
    assert!(
        join.join_steps.iter().any(|s| s.buckets > 1),
        "a bounded step must build a multi-bucket index"
    );
    assert!(join.probe_hits > 0, "joined rows imply probe hits");
}
