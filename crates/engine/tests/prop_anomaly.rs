//! Property-based validation of the sliding-window anomaly operator
//! against a from-first-principles reference computation.

use std::collections::BTreeMap;

use aiql_engine::{Engine, EngineConfig};
use aiql_model::{AgentId, Operation, Timestamp, Value};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};
use proptest::prelude::*;

/// Transfers of `amount` bytes by process `p{proc_id}` at second `t`.
fn arb_transfer() -> impl Strategy<Value = (u32, i64, u64)> {
    (0u32..4, 0i64..2_000, 1u64..10_000)
}

fn build_store(transfers: &[(u32, i64, u64)]) -> EventStore {
    let mut store = EventStore::new(StoreConfig {
        dedup: false,
        ..StoreConfig::default()
    });
    let raws: Vec<RawEvent> = transfers
        .iter()
        .map(|&(p, t, amount)| {
            RawEvent::instant(
                AgentId(1),
                Operation::Write,
                EntitySpec::process(100 + p, &format!("proc{p}.exe"), "u"),
                EntitySpec::tcp(
                    aiql_model::IpV4::from_octets(10, 0, 0, 1),
                    40_000,
                    aiql_model::IpV4::from_octets(10, 0, 4, 129),
                    443,
                ),
                Timestamp::from_secs(t),
                amount,
            )
        })
        .collect();
    store.ingest_all(&raws);
    store
}

/// Reference: per 100s window (step 50s), per process, sum of amounts;
/// report (process, sum) whenever sum > threshold.
fn reference_rows(
    transfers: &[(u32, i64, u64)],
    window_s: i64,
    step_s: i64,
    threshold: u64,
) -> Vec<(String, i64)> {
    if transfers.is_empty() {
        return Vec::new();
    }
    let min_t = transfers.iter().map(|t| t.1).min().unwrap();
    let max_t = transfers.iter().map(|t| t.1).max().unwrap();
    let mut rows = Vec::new();
    let mut w = min_t;
    while w <= max_t {
        let mut sums: BTreeMap<u32, u64> = BTreeMap::new();
        // Insertion order by first event time within the window mirrors the
        // engine's group ordering, but we compare as sets anyway.
        for &(p, t, amount) in transfers {
            if t >= w && t < w + window_s {
                *sums.entry(p).or_default() += amount;
            }
        }
        for (p, sum) in sums {
            if sum > threshold {
                rows.push((format!("proc{p}.exe"), sum as i64));
            }
        }
        w += step_s;
    }
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The window operator's (group, sum) rows match the reference for
    /// arbitrary event placements.
    #[test]
    fn window_sums_match_reference(transfers in proptest::collection::vec(arb_transfer(), 1..60),
                                   threshold in 0u64..20_000) {
        let store = build_store(&transfers);
        let engine = Engine::new(EngineConfig::default());
        let src = format!(
            r#"window = 100 sec, step = 50 sec
               proc p write ip i as evt
               return p, sum(evt.amount) as vol
               group by p
               having vol > {threshold}"#
        );
        let table = engine.execute_text(&store, &src).unwrap();
        let mut got: Vec<(String, i64)> = table
            .rows
            .iter()
            .map(|r| {
                let name = r[0].render(store.interner());
                let vol = r[1].as_i64().unwrap();
                (name, vol)
            })
            .collect();
        got.sort();
        let want = reference_rows(&transfers, 100, 50, threshold);
        prop_assert_eq!(got, want);
    }

    /// History access: `vol[1]` equals the previous window's `vol` for the
    /// same group — checked via a query that *requires* the previous-window
    /// value to equal the current one (only constant-rate groups match).
    #[test]
    fn history_lag_semantics(rate in 1u64..100, windows in 2usize..6) {
        // One process transferring `rate` bytes exactly once per step.
        let transfers: Vec<(u32, i64, u64)> = (0..windows as i64 * 2)
            .map(|k| (0, k * 50, rate))
            .collect();
        let store = build_store(&transfers);
        let engine = Engine::new(EngineConfig::default());
        // Tumbling windows (step == window) so each event counts once.
        let src = r#"window = 50 sec, step = 50 sec
               proc p write ip i as evt
               return p, sum(evt.amount) as vol
               group by p
               having vol = vol[1]"#;
        let table = engine.execute_text(&store, src).unwrap();
        // All windows after the first satisfy vol = vol[1] (constant rate);
        // the first window's history is 0 ≠ rate.
        prop_assert_eq!(table.rows.len(), windows * 2 - 1);
        for row in &table.rows {
            prop_assert_eq!(row[1], Value::Int(rate as i64));
        }
    }

    /// The naive (baseline) window assignment returns identical rows.
    #[test]
    fn naive_assignment_equivalent(transfers in proptest::collection::vec(arb_transfer(), 1..40)) {
        let store = build_store(&transfers);
        let src = r#"window = 100 sec, step = 30 sec
               proc p write ip i as evt
               return p, count(evt.amount) as n, avg(evt.amount) as m
               group by p
               having n >= 1"#;
        let engine = Engine::new(EngineConfig::default());
        let fast = engine.execute_text(&store, src).unwrap().normalized();
        let slow = aiql_baseline::RelationalEngine::new(false)
            .execute_text(&store, src)
            .unwrap()
            .normalized();
        prop_assert_eq!(fast.rows, slow.rows);
    }
}
