//! Figure 5 — execution time of the 26 case-study queries: AIQL vs the
//! relational baseline *without* the storage optimizations vs the
//! Neo4j-style graph baseline. The paper reports AIQL 124× faster than
//! PostgreSQL and 157× faster than Neo4j on this attack, with Neo4j
//! generally slower than PostgreSQL because it lacks efficient joins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aiql_baseline::{GraphEngine, RelationalEngine};
use aiql_bench::fig5_store;
use aiql_engine::{Engine, EngineConfig};
use aiql_sim::case_study_queries;

fn bench_fig5(c: &mut Criterion) {
    let store = fig5_store();
    let engine = Engine::new(EngineConfig::default());
    let postgres = RelationalEngine::new(false);
    let neo4j = GraphEngine::build(&store);
    let mut group = c.benchmark_group("fig5");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));

    for cq in case_study_queries() {
        group.bench_with_input(BenchmarkId::new("aiql", cq.id), &cq.aiql, |b, src| {
            b.iter(|| engine.execute_text(&store, src).expect("aiql query"));
        });
        group.bench_with_input(BenchmarkId::new("postgresql", cq.id), &cq.aiql, |b, src| {
            b.iter(|| {
                postgres
                    .execute_text(&store, src)
                    .expect("relational query")
            });
        });
        group.bench_with_input(BenchmarkId::new("neo4j", cq.id), &cq.aiql, |b, src| {
            b.iter(|| neo4j.execute_text(&store, src).expect("graph query"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
