//! Figure 4 — execution time of the 19 demo-attack investigation queries:
//! AIQL vs the PostgreSQL-style relational baseline, both running on the
//! optimized storage. The paper reports a 21× total speedup with the
//! largest gaps on the complex multi-pattern queries (a2-2, a5-5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aiql_baseline::RelationalEngine;
use aiql_bench::fig4_store;
use aiql_engine::{Engine, EngineConfig};
use aiql_sim::demo_queries;

fn bench_fig4(c: &mut Criterion) {
    let store = fig4_store();
    let engine = Engine::new(EngineConfig::default());
    let postgres = RelationalEngine::new(true);
    let mut group = c.benchmark_group("fig4");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));

    for cq in demo_queries() {
        group.bench_with_input(BenchmarkId::new("aiql", cq.id), &cq.aiql, |b, src| {
            b.iter(|| engine.execute_text(&store, src).expect("aiql query"));
        });
        group.bench_with_input(BenchmarkId::new("postgresql", cq.id), &cq.aiql, |b, src| {
            b.iter(|| postgres.execute_text(&store, src).expect("baseline query"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
