//! Substrate microbenchmarks: parser, pattern matcher, dictionary lookups,
//! WAL, and snapshots. These track the fixed costs under every query.

use criterion::{criterion_group, criterion_main, Criterion};

use aiql_lang::parse_query;
use aiql_model::StringPattern;
use aiql_sim::{demo_queries, scenario_demo, Scale};
use aiql_storage::{snapshot, EventStore, StoreConfig, Wal};

fn bench_parser(c: &mut Criterion) {
    let catalog = demo_queries();
    let heavy = &catalog.iter().find(|q| q.id == "a5-5").unwrap().aiql;
    let mut group = c.benchmark_group("micro/parser");
    group.bench_function("query1", |b| {
        b.iter(|| parse_query(heavy).expect("parse"));
    });
    group.bench_function("catalog-19", |b| {
        b.iter(|| {
            for q in &catalog {
                parse_query(&q.aiql).expect("parse");
            }
        });
    });
    group.bench_function("sql-translation", |b| {
        let q = parse_query(heavy).unwrap();
        b.iter(|| aiql_lang::sql::to_sql(&q));
    });
    group.finish();
}

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/pattern");
    let suffix = StringPattern::new("%cmd.exe");
    let infix = StringPattern::new("%info_stealer%");
    let haystacks: Vec<String> = (0..1000)
        .map(|i| format!("C:\\Program Files\\app{i}\\bin\\tool{i}.exe"))
        .collect();
    group.bench_function("suffix-1k", |b| {
        b.iter(|| haystacks.iter().filter(|h| suffix.matches(h)).count());
    });
    group.bench_function("infix-1k", |b| {
        b.iter(|| haystacks.iter().filter(|h| infix.matches(h)).count());
    });
    group.finish();
}

fn bench_persistence(c: &mut Criterion) {
    let scenario = scenario_demo(Scale {
        hosts: 4,
        events_per_host: 2_000,
        seed: 3,
    });
    let mut store = EventStore::new(StoreConfig::default());
    store.ingest_all(&scenario.raws);
    let mut group = c.benchmark_group("micro/persistence");
    group.sample_size(10);

    group.bench_function("wal-append-8k", |b| {
        b.iter(|| {
            let mut path = std::env::temp_dir();
            path.push(format!("aiql-bench-wal-{}", std::process::id()));
            let mut wal = Wal::create(&path).unwrap();
            for raw in &scenario.raws {
                wal.append(raw).unwrap();
            }
            wal.flush().unwrap();
            std::fs::remove_file(&path).ok();
        });
    });
    group.bench_function("snapshot-save-load", |b| {
        b.iter(|| {
            let mut path = std::env::temp_dir();
            path.push(format!("aiql-bench-snap-{}", std::process::id()));
            snapshot::save(&store, &path).unwrap();
            let loaded = snapshot::load(&path).unwrap();
            std::fs::remove_file(&path).ok();
            loaded.event_count()
        });
    });
    group.finish();
}

fn bench_dictionary(c: &mut Criterion) {
    let scenario = scenario_demo(Scale {
        hosts: 8,
        events_per_host: 5_000,
        seed: 5,
    });
    let mut store = EventStore::new(StoreConfig::default());
    store.ingest_all(&scenario.raws);
    let mut group = c.benchmark_group("micro/dictionary");
    let pattern = aiql_storage::EntityConstraint::on_default(aiql_storage::AttrCmp::Like(
        StringPattern::new("%sbblv%"),
    ));
    group.bench_function("like-over-dictionary", |b| {
        b.iter(|| {
            store
                .entities()
                .find(
                    aiql_model::EntityKind::Process,
                    None,
                    std::slice::from_ref(&pattern),
                )
                .len()
        });
    });
    group.finish();
}

fn bench_idset(c: &mut Criterion) {
    use aiql_model::EntityId;
    use aiql_storage::IdSet;
    use std::collections::HashSet;

    let mut group = c.benchmark_group("micro/idset");
    // Two overlapping sets of the size a semi-join narrowing step sees.
    let a_ids: Vec<EntityId> = (0..20_000).step_by(2).map(EntityId).collect();
    let b_ids: Vec<EntityId> = (0..20_000).step_by(3).map(EntityId).collect();
    let a = IdSet::from_iter(a_ids.iter().copied());
    let b = IdSet::from_iter(b_ids.iter().copied());
    group.bench_function("bitmap-intersect-10k", |bch| {
        bch.iter(|| {
            let mut x = a.clone();
            x.intersect_with(&b);
            x.len()
        });
    });
    // The seed's narrowing: rebuild a hash set per pattern per variable.
    let a_hash: HashSet<EntityId> = a_ids.iter().copied().collect();
    let b_hash: HashSet<EntityId> = b_ids.iter().copied().collect();
    group.bench_function("hashset-rebuild-10k", |bch| {
        bch.iter(|| {
            let x: HashSet<EntityId> = a_hash
                .iter()
                .filter(|id| b_hash.contains(*id))
                .copied()
                .collect();
            x.len()
        });
    });
    group.bench_function("bitmap-membership-1m", |bch| {
        bch.iter(|| {
            let mut hits = 0usize;
            for i in 0..1_000_000u32 {
                if a.contains(EntityId(i % 20_000)) {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parser,
    bench_patterns,
    bench_persistence,
    bench_dictionary,
    bench_idset
);
criterion_main!(benches);
