//! Ablations — the contribution of each design choice DESIGN.md calls out.
//!
//! Engine side: pruning-power scheduling, partition parallelism, semi-join
//! pushdown, and temporal narrowing are toggled individually on the most
//! join-heavy catalog query. Storage side: event dedup on/off (ingest cost
//! + store size), batch-commit size, and indexed vs full scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aiql_bench::fig4_store;
use aiql_engine::{Engine, EngineConfig};
use aiql_model::{Duration, Operation};
use aiql_sim::{demo_queries, scenario_demo, Scale};
use aiql_storage::{EventFilter, EventStore, OpSet, StoreConfig};

/// The heaviest multievent query of the demo catalog (Query 1 / a5-5).
fn heavy_query() -> String {
    demo_queries()
        .into_iter()
        .find(|q| q.id == "a5-5")
        .expect("a5-5 in catalog")
        .aiql
}

fn bench_engine_ablations(c: &mut Criterion) {
    let store = fig4_store();
    let src = heavy_query();
    let mut group = c.benchmark_group("ablation/engine");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));

    let variants: Vec<(&str, EngineConfig)> = vec![
        ("full", EngineConfig::default()),
        (
            "no-pruning-priority",
            EngineConfig {
                prioritize_pruning: false,
                ..EngineConfig::default()
            },
        ),
        (
            "no-partition-parallel",
            EngineConfig {
                partition_parallel: false,
                ..EngineConfig::default()
            },
        ),
        (
            "no-entity-pushdown",
            EngineConfig {
                entity_pushdown: false,
                ..EngineConfig::default()
            },
        ),
        (
            "no-semi-join-pushdown",
            EngineConfig {
                semi_join_pushdown: false,
                ..EngineConfig::default()
            },
        ),
        (
            "no-temporal-narrowing",
            EngineConfig {
                temporal_narrowing: false,
                ..EngineConfig::default()
            },
        ),
        (
            "no-late-materialization",
            EngineConfig {
                late_materialization: false,
                ..EngineConfig::default()
            },
        ),
        (
            "no-scan-pool",
            EngineConfig {
                scan_pool: false,
                ..EngineConfig::default()
            },
        ),
        (
            "seed-pipeline",
            EngineConfig {
                late_materialization: false,
                scan_pool: false,
                ..EngineConfig::default()
            },
        ),
        ("all-off", EngineConfig::unoptimized()),
    ];
    for (name, config) in variants {
        let engine = Engine::new(config);
        group.bench_function(BenchmarkId::new("a5-5", name), |b| {
            b.iter(|| engine.execute_text(&store, &src).expect("query"));
        });
    }
    group.finish();
}

fn bench_parallelism_scaling(c: &mut Criterion) {
    let store = fig4_store();
    // A deliberately broad scan-bound query (all hosts, whole day).
    let src = r#"(at "03/19/2018") proc p read || write file f as e
                 return p, count(e.amount) as n group by p having n > 100"#;
    let mut group = c.benchmark_group("ablation/parallelism");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    for threads in [1usize, 2, 4, 8] {
        let engine = Engine::new(EngineConfig {
            parallelism: threads,
            ..EngineConfig::default()
        });
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| engine.execute_text(&store, src).expect("query"));
        });
    }
    group.finish();
}

fn bench_storage_ablations(c: &mut Criterion) {
    let scenario = scenario_demo(Scale {
        hosts: 4,
        events_per_host: 5_000,
        seed: 1,
    });
    let mut group = c.benchmark_group("ablation/storage");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));

    // Ingest with/without event dedup.
    for (name, dedup) in [("dedup-on", true), ("dedup-off", false)] {
        group.bench_function(BenchmarkId::new("ingest", name), |b| {
            b.iter(|| {
                let mut store = EventStore::new(StoreConfig {
                    dedup,
                    ..StoreConfig::default()
                });
                store.ingest_all(&scenario.raws);
                store.event_count()
            });
        });
    }

    // Batch-commit size.
    for batch in [64usize, 1024, 16_384] {
        group.bench_function(BenchmarkId::new("batch-size", batch), |b| {
            b.iter(|| {
                let mut store = EventStore::new(StoreConfig {
                    batch_size: batch,
                    ..StoreConfig::default()
                });
                store.ingest_all(&scenario.raws);
                store.event_count()
            });
        });
    }

    // Hypertable bucket width (partition pruning granularity).
    for (name, bucket) in [("bucket-10min", 10), ("bucket-1h", 60), ("bucket-6h", 360)] {
        let mut store = EventStore::new(StoreConfig {
            time_bucket: Duration::from_mins(bucket),
            ..StoreConfig::default()
        });
        store.ingest_all(&scenario.raws);
        let window = aiql_model::TimeWindow::new(
            aiql_model::Timestamp::from_date(2018, 3, 19) + Duration::from_hours(9),
            aiql_model::Timestamp::from_date(2018, 3, 19) + Duration::from_hours(10),
        );
        let filter = EventFilter::all()
            .with_window(window)
            .with_ops(OpSet::single(Operation::Write));
        group.bench_function(BenchmarkId::new("window-scan", name), |b| {
            b.iter(|| store.scan_collect(&filter).len());
        });
    }

    // Indexed scan vs full scan for a selective predicate.
    let mut store = EventStore::default();
    store.ingest_all(&scenario.raws);
    let filter = EventFilter::all().with_ops(OpSet::single(Operation::Execute));
    group.bench_function("selective-scan/indexed", |b| {
        b.iter(|| store.scan_collect(&filter).len());
    });
    group.bench_function("selective-scan/full", |b| {
        b.iter(|| store.scan_unoptimized_collect(&filter).len());
    });

    // Selection-vector row selection vs the materializing verification
    // path, and the cost-based access-path choice vs the fixed 64-id
    // cutoff (exercised through the columnar `count` API the late
    // pipeline's scans are built on).
    for (name, selection_vectors, cost_based_access) in [
        ("scan-path/selection-vectors", true, true),
        ("scan-path/fixed-cutoff", true, false),
        ("scan-path/materializing", false, false),
    ] {
        let mut store = EventStore::new(StoreConfig {
            selection_vectors,
            cost_based_access,
            ..StoreConfig::default()
        });
        store.ingest_all(&scenario.raws);
        let filter = EventFilter::all().with_ops(OpSet::single(Operation::Write));
        group.bench_function(name, |b| {
            b.iter(|| store.count(&filter));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_ablations,
    bench_parallelism_scaling,
    bench_storage_ablations
);
criterion_main!(benches);
