//! PR 10 perf trajectory: the demand-driven blocked join drive.
//!
//! The unbounded 4-pattern chain is *emission-bound* after PR 8: each
//! breadth-first join step fills the `max_intermediate` cap and later
//! steps consume only a sliver of that frontier. The blocked drive
//! processes the seed frontier in bounded runs, depth-first through all
//! remaining steps, so tuples nobody will consume are never emitted.
//!
//! Two query families measure the drive against the breadth-first
//! baseline (`blocked_join_drive: false`, everything else identical —
//! exactly the BENCH_PR8.json all-on configuration):
//!
//! * `chain4` — the unbounded 4-pattern chain (the emission-bound case
//!   and the headline gate: ≥ 1.5× end-to-end);
//! * `exfil3` — the bounded 3-pattern exfiltration chain (probe-bound
//!   after PR 8's layers; the drive must not regress it).
//!
//! The two catalog guard queries (a5-5, a2-3) pin selective
//! investigations against regression. Emission counters
//! (`runs_driven`, `emitted_tuples` vs `breadth_bound_tuples`,
//! `early_exit_depth`) come from EXPLAIN ANALYZE stats.
//!
//! Emits `BENCH_PR10.json` (path via argv[1], default `BENCH_PR10.json`).
//! Pass `--check` for CI's single-iteration correctness mode: blocked
//! serial and parallel drives at block sizes {1, 7, 4096} must be
//! byte-identical to the breadth-first reference when uncapped, and under
//! truncating `max_intermediate` sweeps and governor memory budgets the
//! blocked result must be a prefix (in nested-loop emission order) of the
//! untruncated result, with the `truncated` flag set iff rows were lost.

use std::fmt::Write as _;

use aiql_bench::support::{catalog_query, demo_store, parse_args};
use aiql_bench::{bench_scale, push_host_meta, time_best_of};
use aiql_engine::{Engine, EngineConfig, EngineError, ExecBudget};
use aiql_storage::EventStore;

/// The unbounded join-dominated chain (same shape as the PR 2/3/4/8
/// benches, so the gate compares directly against `BENCH_PR8.json`).
const CHAIN_QUERY: &str = r#"proc p1 write file f as e1
proc p2 read file f as e2
proc p2 write file f2 as e3
proc p3 read file f2 as e4
with e1 before e2, e2 before e3, e3 before e4
return count(e4.amount)"#;

/// Bounded 3-pattern exfiltration chain (non-aggregated, so the
/// row-prefix contract is directly observable on its result rows).
const EXFIL_QUERY: &str = r#"proc p1 write file f as e1
proc p2 read file f as e2
proc p2 write file f2 as e3
with e1 before[30 min] e2, e2 before[30 min] e3
return p1, p2, f2"#;

/// Default-everything engine with the blocked drive toggled; `blocked:
/// false` reproduces the BENCH_PR8.json all-on configuration exactly.
fn drive_config(blocked: bool, block: usize) -> EngineConfig {
    EngineConfig {
        blocked_join_drive: blocked,
        join_block_tuples: block,
        ..EngineConfig::default()
    }
}

/// Emission observables of the join operator for one execution.
#[derive(Default, Clone, Copy)]
struct EmissionObs {
    runs_driven: u64,
    emitted_tuples: u64,
    breadth_bound_tuples: u64,
    early_exit_depth: Option<usize>,
}

fn emission_obs(engine: &Engine, store: &EventStore, aiql: &str) -> EmissionObs {
    let Ok(aiql_lang::Query::Multievent(m)) = aiql_lang::parse_query(aiql) else {
        return EmissionObs::default();
    };
    let Ok((_, stats)) = engine.execute_multievent_with_stats(store, &m) else {
        return EmissionObs::default();
    };
    let Some(join) = stats.ops.iter().find(|o| o.kind == "TemporalJoin") else {
        return EmissionObs::default();
    };
    EmissionObs {
        runs_driven: join.runs_driven,
        emitted_tuples: join.emitted_tuples,
        breadth_bound_tuples: join.breadth_bound_tuples,
        early_exit_depth: join.early_exit_depth,
    }
}

/// The chain's aggregated count (its only cell), for the truncated-case
/// dominance check.
fn count_of(t: &aiql_engine::ResultTable) -> i64 {
    match t.rows[0][0] {
        aiql_model::Value::Int(n) => n,
        v => panic!("aggregated count expected, got {v:?}"),
    }
}

/// Identity contract: blocked serial and parallel drives, at several block
/// sizes, must return byte-identical tables (rows *and* truncated flag) to
/// the breadth-first reference when no cap trips. The unbounded chain
/// legitimately fills `max_intermediate` even breadth-first — there the
/// guaranteed relation is prefix dominance: both drives emit prefixes of
/// the untruncated result, and the blocked prefix is at least as long
/// (breadth-first can under-fill the output cap from its truncated
/// intermediates), so its aggregated count dominates.
fn check_identity(store: &EventStore, families: &[(&str, String)]) {
    for (name, aiql) in families {
        let reference = Engine::new(drive_config(false, 4096));
        let want = reference.execute_text(store, aiql).expect("reference");
        assert!(!want.rows.is_empty(), "{name}: query must find evidence");
        // The cap-filling family is heavy (every run emits the full output
        // cap), so it checks at the default block only; the small blocks
        // get full coverage on the uncapped family and in the proptests.
        let blocks: &[usize] = if want.truncated {
            &[4096]
        } else {
            &[1, 7, 4096]
        };
        for &block in blocks {
            for parallel in [false, true] {
                let engine = Engine::new(EngineConfig {
                    parallel_join: parallel,
                    parallelism: if parallel { 2 } else { 1 },
                    join_partitions: if parallel { 3 } else { 0 },
                    parallel_join_min_work: 0,
                    ..drive_config(true, block)
                });
                let got = engine.execute_text(store, aiql).expect("blocked");
                if want.truncated {
                    assert!(
                        got.truncated,
                        "{name}: blocked(block {block}) untruncated where breadth-first capped"
                    );
                    assert!(
                        count_of(&got) >= count_of(&want),
                        "{name}: blocked(block {block}, parallel {parallel}) emitted a shorter \
                         prefix than breadth-first"
                    );
                } else {
                    assert_eq!(
                        (&want.rows, false),
                        (&got.rows, got.truncated),
                        "{name}: blocked(block {block}, parallel {parallel}) diverged uncapped"
                    );
                }
            }
        }
    }
}

/// Truncation contract: under a truncating `max_intermediate`, the blocked
/// drive returns a prefix (in nested-loop emission order) of its own
/// untruncated result, the `truncated` flag is set iff rows were lost, and
/// serial and parallel drives agree byte for byte.
fn check_truncation_prefix(store: &EventStore, aiql: &str) {
    let full = Engine::new(drive_config(true, 4096))
        .execute_text(store, aiql)
        .expect("untruncated");
    assert!(!full.truncated);
    for &cap in &[1usize, 7, 100, 5000] {
        for &block in &[7usize, 4096] {
            let serial = Engine::new(EngineConfig {
                max_intermediate: cap,
                ..drive_config(true, block)
            })
            .execute_text(store, aiql)
            .expect("capped blocked");
            assert!(
                serial.rows.len() <= full.rows.len()
                    && serial.rows[..] == full.rows[..serial.rows.len()],
                "cap {cap} block {block}: capped rows are not an emission-order prefix"
            );
            assert_eq!(
                serial.truncated,
                serial.rows.len() < full.rows.len() || serial.rows.len() >= cap,
                "cap {cap} block {block}: truncated flag wrong ({} of {} rows)",
                serial.rows.len(),
                full.rows.len()
            );
            let parallel = Engine::new(EngineConfig {
                max_intermediate: cap,
                parallel_join: true,
                parallelism: 2,
                join_partitions: 3,
                parallel_join_min_work: 0,
                ..drive_config(true, block)
            })
            .execute_text(store, aiql)
            .expect("capped parallel blocked");
            assert_eq!(
                (&serial.rows, serial.truncated),
                (&parallel.rows, parallel.truncated),
                "cap {cap} block {block}: serial and parallel capped drives diverged"
            );
        }
    }
}

/// Governed contract: under a memory budget the blocked drive either
/// trips with the exact budget error (strict mode) or returns an
/// emission-order prefix of its full result (partial mode).
fn check_governed(store: &EventStore, aiql: &str) {
    let engine = Engine::new(drive_config(true, 4096));
    let full = engine.execute_text(store, aiql).expect("ungoverned");
    for &budget_bytes in &[4 << 10u64, 64 << 10, 1 << 20] {
        let strict = ExecBudget::unlimited().with_memory_bytes(budget_bytes);
        match engine.execute_text_with_budget(store, aiql, &strict) {
            Ok(t) => assert_eq!(t.rows, full.rows, "strict governed run diverged"),
            Err(e) => assert_eq!(e, EngineError::MemoryBudget { budget_bytes }),
        }
        let partial = ExecBudget::unlimited()
            .with_memory_bytes(budget_bytes)
            .with_partial_results(true);
        let p = engine
            .execute_text_with_budget(store, aiql, &partial)
            .expect("partial mode never errors on a memory trip");
        assert!(
            p.rows.len() <= full.rows.len() && p.rows[..] == full.rows[..p.rows.len()],
            "budget {budget_bytes}: partial rows not an emission-order prefix"
        );
    }
}

fn main() {
    let args = parse_args("BENCH_PR10.json");
    let (check_mode, out_path) = (args.check, args.out_path);
    let reps: usize = if check_mode {
        1
    } else {
        std::env::var("AIQL_BENCH_REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5)
    };

    let store: EventStore = demo_store();
    let total_events = store.stats().events;

    let families: Vec<(&str, String)> = vec![
        ("chain4/4pattern-unbounded", CHAIN_QUERY.to_string()),
        ("exfil3/3pattern-bounded-30min", EXFIL_QUERY.to_string()),
    ];

    check_identity(&store, &families);
    if check_mode {
        check_truncation_prefix(&store, EXFIL_QUERY);
        check_governed(&store, EXFIL_QUERY);
        // The counters must show the drive actually ran blocked.
        let obs = emission_obs(&Engine::new(drive_config(true, 4096)), &store, CHAIN_QUERY);
        assert!(
            obs.runs_driven > 0,
            "blocked drive never engaged on the chain"
        );
        assert!(
            obs.emitted_tuples <= obs.breadth_bound_tuples,
            "emitted more than the breadth-first bound"
        );
        println!(
            "pr10_emission --check OK: blocked drive byte-identical to breadth-first \
             uncapped (blocks 1/7/4096 × serial/parallel, {} families); truncating caps \
             and memory budgets honoured the emission-order prefix contract \
             ({} run(s) driven, {} emitted / breadth bound {})",
            families.len(),
            obs.runs_driven,
            obs.emitted_tuples,
            obs.breadth_bound_tuples
        );
        return;
    }

    // Timed comparison: breadth-first (the BENCH_PR8 configuration) vs the
    // blocked drive, fresh engines so plan caches never leak across modes.
    struct Row {
        family: &'static str,
        breadth_ms: f64,
        blocked_ms: f64,
        obs: EmissionObs,
        rows: usize,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (family, aiql) in &families {
        let breadth = Engine::new(drive_config(false, 4096));
        let blocked = Engine::new(drive_config(true, 4096));
        let want = breadth.execute_text(&store, aiql).expect("q");
        let got = blocked.execute_text(&store, aiql).expect("q");
        if want.truncated {
            assert!(
                got.truncated && count_of(&got) >= count_of(&want),
                "{family}: blocked drive emitted a shorter prefix than breadth-first"
            );
        } else {
            assert_eq!(
                (&want.rows, want.truncated),
                (&got.rows, got.truncated),
                "{family}: blocked drive diverged before timing"
            );
        }
        let breadth_ms = time_best_of(reps, || {
            breadth.execute_text(&store, aiql).expect("q").len()
        }) * 1e3;
        let blocked_ms = time_best_of(reps, || {
            blocked.execute_text(&store, aiql).expect("q").len()
        }) * 1e3;
        let obs = emission_obs(&blocked, &store, aiql);
        eprintln!(
            "{family}: breadth {breadth_ms:.3} ms -> blocked {blocked_ms:.3} ms \
             ({:.2}x) | {} run(s), emitted {} / breadth bound {}{}",
            breadth_ms / blocked_ms.max(1e-9),
            obs.runs_driven,
            obs.emitted_tuples,
            obs.breadth_bound_tuples,
            match obs.early_exit_depth {
                Some(d) => format!(", early exit at step {d}"),
                None => String::new(),
            }
        );
        rows.push(Row {
            family,
            breadth_ms,
            blocked_ms,
            obs,
            rows: want.len(),
        });
    }

    // The headline gate: the emission-bound chain must get ≥ 1.5× faster.
    let chain = &rows[0];
    let chain_speedup = chain.breadth_ms / chain.blocked_ms.max(1e-9);
    assert!(
        chain_speedup >= 1.5,
        "chain4 must speed up ≥ 1.5x under the blocked drive \
         (got {chain_speedup:.2}x: {:.1} ms -> {:.1} ms)",
        chain.breadth_ms,
        chain.blocked_ms
    );

    // Catalog guards: selective investigations must stay flat. Timed under
    // both drives; the gate allows 5% plus a fixed 50 µs jitter allowance
    // (these queries sit at ~0.1–0.35 ms).
    let mut guards: Vec<(&str, f64, f64)> = Vec::new();
    for id in ["a5-5", "a2-3"] {
        let aiql = catalog_query(id);
        let breadth = Engine::new(drive_config(false, 4096));
        let blocked = Engine::new(drive_config(true, 4096));
        let n = blocked.execute_text(&store, &aiql).expect("guard").len();
        assert!(n > 0, "catalog guard {id} must find evidence");
        let off_ms = time_best_of(reps, || {
            breadth.execute_text(&store, &aiql).expect("g").len()
        }) * 1e3;
        let on_ms = time_best_of(reps, || {
            blocked.execute_text(&store, &aiql).expect("g").len()
        }) * 1e3;
        eprintln!("catalog guard {id}: breadth {off_ms:.3} ms, blocked {on_ms:.3} ms");
        assert!(
            on_ms <= off_ms * 1.05 + 0.05,
            "catalog guard {id} regressed > 5%: {off_ms:.3} ms -> {on_ms:.3} ms"
        );
        guards.push((id, off_ms, on_ms));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 10,");
    let _ = writeln!(
        json,
        "  \"title\": \"demand-driven blocked join drive: depth-first frontier runs vs breadth-first emission\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"scenario\": \"demo attack (fig4)\", \"hosts\": {}, \"events\": {total_events}}},",
        bench_scale().hosts,
    );
    push_host_meta(&mut json, EngineConfig::default().parallelism);
    let _ = writeln!(json, "  \"reps_best_of\": {reps},");
    let _ = writeln!(
        json,
        "  \"note\": \"breadth-first = BENCH_PR8.json all-on configuration; blocked results asserted byte-identical before timing; emission counters from EXPLAIN ANALYZE stats\","
    );
    json.push_str("  \"catalog_guards\": {");
    for (i, (id, off, on)) in guards.iter().enumerate() {
        let _ = write!(
            json,
            "{}\"{id}_breadth_ms\": {off:.3}, \"{id}_ms\": {on:.3}",
            if i > 0 { ", " } else { "" }
        );
    }
    json.push_str("},\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"family\": \"{}\", \"breadth_ms\": {:.3}, \"blocked_ms\": {:.3}, \"speedup\": {:.2}, \"runs_driven\": {}, \"emitted_tuples\": {}, \"breadth_bound_tuples\": {}, \"early_exit_depth\": {}, \"result_rows\": {}}}",
            r.family,
            r.breadth_ms,
            r.blocked_ms,
            r.breadth_ms / r.blocked_ms.max(1e-9),
            r.obs.runs_driven,
            r.obs.emitted_tuples,
            r.obs.breadth_bound_tuples,
            match r.obs.early_exit_depth {
                Some(d) => d.to_string(),
                None => "null".to_string(),
            },
            r.rows,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR10.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
