//! PR 1 perf trajectory: the late-materialization pipeline vs the seed's
//! materializing pipeline, measured on the fig4-style demo workload.
//!
//! Emits `BENCH_PR1.json` (path via argv[1], default `BENCH_PR1.json`)
//! comparing, per workload:
//!
//! * `baseline` — the seed data path: materializing scans
//!   (`StoreConfig::selection_vectors = false`), event-copying candidate
//!   lists and tuple-cloning join (`late_materialization = false`), and
//!   per-scan thread spawns (`scan_pool = false`);
//! * `optimized` — selection-vector scans, bitmap id sets, `EventRef`
//!   candidate lists/join, persistent scan pool.
//!
//! Run with `cargo run --release -p aiql-bench --bin pr1_pipeline`.

use std::fmt::Write as _;

use aiql_bench::{bench_scale, push_host_meta, time_best_of};
use aiql_engine::{Engine, EngineConfig};
use aiql_sim::{build_store, demo_queries, scenario_demo};
use aiql_storage::{EventFilter, EventStore, OpSet, StoreConfig};

struct Row {
    name: &'static str,
    unit: &'static str,
    baseline_ms: f64,
    optimized_ms: f64,
    detail: String,
}

fn engine_config(optimized: bool) -> EngineConfig {
    EngineConfig {
        late_materialization: optimized,
        scan_pool: optimized,
        ..EngineConfig::default()
    }
}

fn store_config(optimized: bool) -> StoreConfig {
    StoreConfig {
        selection_vectors: optimized,
        cost_based_access: optimized,
        ..StoreConfig::default()
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR1.json".to_string());
    let reps: usize = std::env::var("AIQL_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let scenario = scenario_demo(bench_scale());
    eprintln!("building stores ({} raw events)...", scenario.raws.len());
    let seed_store: EventStore = build_store(&scenario, store_config(false));
    let opt_store: EventStore = build_store(&scenario, store_config(true));
    let total_events = opt_store.event_count();

    let seed_engine = Engine::new(engine_config(false));
    let opt_engine = Engine::new(engine_config(true));
    // Warm the persistent pool before timing.
    let _ = opt_engine.execute_text(&opt_store, "proc p execute file f as e return p");

    let mut rows: Vec<Row> = Vec::new();

    // 1. Columnar predicate sweep: count matching events store-wide. The
    // baseline store verifies by materializing an `Event` per row (the
    // seed's data movement); the optimized store evaluates the predicate
    // directly on the columns via selection vectors.
    let filter = EventFilter::all().with_ops(OpSet::from_ops(&[
        aiql_model::Operation::Read,
        aiql_model::Operation::Write,
    ]));
    let matched = opt_store.count(&filter);
    assert_eq!(matched, seed_store.count(&filter), "scan paths must agree");
    let base = time_best_of(reps, || seed_store.count(&filter));
    let opt = time_best_of(reps, || opt_store.count(&filter));
    rows.push(Row {
        name: "scan/read-write-count-sweep",
        unit: "ms",
        baseline_ms: base * 1e3,
        optimized_ms: opt * 1e3,
        detail: format!(
            "{matched} of {total_events} events matched; optimized {:.1} Mevents/s verified",
            total_events as f64 / opt / 1e6
        ),
    });

    // 2. Constraint-selective catalog queries (the paper's demo attack).
    // These are dominated by shared dictionary/constraint resolution, so
    // parity (~1×) is the honest expectation; they are here to prove the
    // new pipeline does not regress the selective regime.
    for id in ["a5-5", "a2-3"] {
        let Some(cq) = demo_queries().into_iter().find(|q| q.id == id) else {
            continue;
        };
        let base = time_best_of(reps, || {
            seed_engine
                .execute_text(&seed_store, &cq.aiql)
                .expect("baseline query")
                .len()
        });
        let opt = time_best_of(reps, || {
            opt_engine
                .execute_text(&opt_store, &cq.aiql)
                .expect("optimized query")
                .len()
        });
        let name: &'static str = if id == "a5-5" {
            "catalog/a5-5-selective"
        } else {
            "catalog/a2-3-selective"
        };
        rows.push(Row {
            name,
            unit: "ms",
            baseline_ms: base * 1e3,
            optimized_ms: opt * 1e3,
            detail: format!("entity-constraint bound; {}", cq.description),
        });
    }

    // 3. Data-heavy multievent chains over the same store — the regime the
    // late-materialization pipeline targets: large candidate lists, real
    // join work, scan+join throughput measured end to end.
    let chains: [(&'static str, &str, &str); 3] = [
        (
            "multievent/4pattern-chain",
            r#"proc p1 write file f as e1
               proc p2 read file f as e2
               proc p2 write file f2 as e3
               proc p3 read file f2 as e4
               with e1 before e2, e2 before e3, e3 before e4
               return count(e4.amount)"#,
            "fig4-style 4-pattern provenance chain, unconstrained entities",
        ),
        (
            "multievent/3pattern-exfil",
            r#"proc p1 write file f as e1
               proc p2 read file f as e2
               proc p2 write ip i as e3
               with e1 before e2, e2 before e3
               return count(e3.amount)"#,
            "3-pattern staging-and-exfiltration shape",
        ),
        (
            "multievent/2pattern-join",
            r#"proc p1 write file f as e1
               proc p2 read file f as e2
               with e1 before e2
               return count(e2.amount)"#,
            "unselective 2-pattern shared-file join",
        ),
    ];
    for (name, src, what) in chains {
        let base = time_best_of(reps, || {
            seed_engine
                .execute_text(&seed_store, src)
                .expect("baseline chain")
                .len()
        });
        let opt = time_best_of(reps, || {
            opt_engine
                .execute_text(&opt_store, src)
                .expect("optimized chain")
                .len()
        });
        rows.push(Row {
            name,
            unit: "ms",
            baseline_ms: base * 1e3,
            optimized_ms: opt * 1e3,
            detail: format!(
                "{what}; optimized {:.2} Mevents/s through scan+join",
                total_events as f64 / opt / 1e6
            ),
        });
    }

    // Render JSON by hand (no serde in the offline environment).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 1,");
    let _ = writeln!(
        json,
        "  \"title\": \"late-materialization pipeline vs seed materializing pipeline\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"scenario\": \"demo attack (fig4)\", \"hosts\": {}, \"events\": {}}},",
        bench_scale().hosts,
        total_events
    );
    let _ = writeln!(json, "  \"reps_best_of\": {reps},");
    push_host_meta(&mut json, EngineConfig::default().parallelism);
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.baseline_ms / r.optimized_ms.max(1e-9);
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"baseline_{}\": {:.3}, \"optimized_{}\": {:.3}, \"speedup\": {:.2}, \"detail\": \"{}\"}}",
            r.name, r.unit, r.baseline_ms, r.unit, r.optimized_ms, speedup,
            r.detail.replace('"', "'")
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR1.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
