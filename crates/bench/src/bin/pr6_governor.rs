//! PR 6 robustness trajectory: query-governor overhead and cancel latency.
//!
//! The governor threads deadline/cancel/memory checks through every hot
//! loop of the engine (scan batches, join probes, projection). Two numbers
//! justify it:
//!
//! * **Overhead**: a governed query whose budget never trips must cost
//!   within 3% of the ungoverned run — the fast path is one amortized
//!   branch per `GOV_CHECK_INTERVAL` tuples plus per-batch byte
//!   accounting. Measured on the PR 4 query set (a5-5, a2-3 catalog
//!   investigations + the 4-pattern chain).
//! * **Cancel latency**: cancelling the chain query mid-flight must
//!   surface `EngineError::Cancelled` in under 10 ms — enforcement is
//!   bounded by `GOV_CHECK_INTERVAL` cheap iterations, not by query size.
//!
//! Emits `BENCH_PR6.json` (path via argv[1], default `BENCH_PR6.json`).
//! Pass `--check` for CI's single-iteration correctness mode: governed
//! results must be byte-identical to ungoverned ones on every family, the
//! overhead gate uses a small absolute epsilon to stay robust at smoke
//! scale, and the cancel-latency gate must hold.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use aiql_bench::{bench_scale, push_host_meta, time_best_of};
use aiql_engine::{CancelToken, Engine, EngineConfig, EngineError, ExecBudget};
use aiql_sim::{build_store, demo_queries, scenario_demo};
use aiql_storage::{EventStore, StoreConfig};

/// The join-dominated chain family (same shape as the PR 2/3/4 chains).
const CHAIN_QUERY: &str = r#"proc p1 write file f as e1
proc p2 read file f as e2
proc p2 write file f2 as e3
proc p3 read file f2 as e4
with e1 before e2, e2 before e3, e3 before e4
return count(e4.amount)"#;

/// Overhead gate: governed must stay within 3% of ungoverned, with a small
/// absolute floor so micro-runs at smoke scale don't fail on timer noise.
const MAX_OVERHEAD_RATIO: f64 = 1.03;
const OVERHEAD_EPSILON_S: f64 = 0.0005;

/// Cancel-latency gate on the chain query.
const MAX_CANCEL_LATENCY: Duration = Duration::from_millis(10);

fn catalog_query(id: &str) -> String {
    demo_queries()
        .into_iter()
        .find(|q| q.id == id)
        .unwrap_or_else(|| panic!("catalog query {id} exists"))
        .aiql
}

/// A budget with every limit set but none remotely reachable: the full
/// governed fast path (deadline poll + byte accounting) with zero trips.
fn untrippable_budget() -> ExecBudget {
    ExecBudget::unlimited()
        .with_deadline(Duration::from_secs(3_600))
        .with_memory_bytes(1 << 40)
        .with_cancel(CancelToken::new())
}

/// Runs the chain query while another thread cancels it, returning the
/// observed cancel→return latency. If the query finishes before the cancel
/// lands, latency is trivially zero (enforcement never had to act).
fn measure_cancel_latency(engine: &Engine, store: &EventStore) -> Duration {
    let token = CancelToken::new();
    let budget = ExecBudget::unlimited().with_cancel(token.clone());
    let cancel_at = std::sync::Arc::new(std::sync::Mutex::new(None::<Instant>));
    let canceller = {
        let token = token.clone();
        let cancel_at = cancel_at.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(500));
            *cancel_at.lock().expect("cancel stamp") = Some(Instant::now());
            token.cancel();
        })
    };
    let outcome = engine.execute_text_with_budget(store, CHAIN_QUERY, &budget);
    let returned = Instant::now();
    canceller.join().expect("canceller thread");
    match outcome {
        Err(EngineError::Cancelled) => {
            let stamp = cancel_at.lock().expect("cancel stamp").expect("cancelled");
            returned.duration_since(stamp)
        }
        Err(e) => panic!("cancelled chain query failed unexpectedly: {e}"),
        // Finished before the cancel was observed: latency is bounded by
        // the (already sub-threshold) query runtime.
        Ok(_) => Duration::ZERO,
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let check_mode = arg.as_deref() == Some("--check");
    let out_path = if check_mode {
        String::new()
    } else {
        arg.unwrap_or_else(|| "BENCH_PR6.json".to_string())
    };
    let reps: usize = if check_mode {
        3
    } else {
        std::env::var("AIQL_BENCH_REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(7)
    };

    let scenario = scenario_demo(bench_scale());
    eprintln!("building store ({} raw events)...", scenario.raws.len());
    let store: EventStore = build_store(&scenario, StoreConfig::default());

    let families: Vec<(&str, String)> = vec![
        ("a5/catalog-a5-5", catalog_query("a5-5")),
        ("a2/catalog-a2-3", catalog_query("a2-3")),
        ("multievent/4pattern-chain", CHAIN_QUERY.to_string()),
    ];

    // Correctness gate (both modes): an untrippable budget must not change
    // a single byte of any result.
    let engine = Engine::new(EngineConfig::default());
    let budget = untrippable_budget();
    for (name, aiql) in &families {
        let want = engine.execute_text(&store, aiql).expect("ungoverned");
        assert!(!want.rows.is_empty(), "{name}: query must find evidence");
        let got = engine
            .execute_text_with_budget(&store, aiql, &budget)
            .expect("governed");
        assert_eq!(
            (&want.rows, want.truncated),
            (&got.rows, got.truncated),
            "{name}: governed result diverged from ungoverned"
        );
        assert!(got.warnings.is_empty(), "{name}: spurious governor warning");
    }

    // Overhead: best-of timing, ungoverned vs governed-but-untripped.
    struct Row {
        name: &'static str,
        ungoverned_ms: f64,
        governed_ms: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (name, aiql) in &families {
        // Warm pools and plan caches identically for both measurements.
        engine.execute_text(&store, aiql).expect("warm");
        let base_s = time_best_of(reps, || engine.execute_text(&store, aiql).expect("q").len());
        let gov_s = time_best_of(reps, || {
            engine
                .execute_text_with_budget(&store, aiql, &budget)
                .expect("q")
                .len()
        });
        let ratio = gov_s / base_s.max(1e-9);
        eprintln!(
            "{name}: ungoverned {:.3} ms, governed {:.3} ms ({:.3}×)",
            base_s * 1e3,
            gov_s * 1e3,
            ratio
        );
        assert!(
            ratio < MAX_OVERHEAD_RATIO || gov_s - base_s < OVERHEAD_EPSILON_S,
            "{name}: governor overhead {:.1}% exceeds the {:.0}% gate \
             (ungoverned {:.3} ms, governed {:.3} ms)",
            (ratio - 1.0) * 100.0,
            (MAX_OVERHEAD_RATIO - 1.0) * 100.0,
            base_s * 1e3,
            gov_s * 1e3,
        );
        rows.push(Row {
            name,
            ungoverned_ms: base_s * 1e3,
            governed_ms: gov_s * 1e3,
        });
    }

    // Cancel latency on the chain query: worst of a few attempts, so one
    // lucky early finish can't mask slow enforcement.
    let mut worst_latency = Duration::ZERO;
    for _ in 0..5 {
        worst_latency = worst_latency.max(measure_cancel_latency(&engine, &store));
    }
    eprintln!("cancel latency (worst of 5): {worst_latency:?}");
    assert!(
        worst_latency < MAX_CANCEL_LATENCY,
        "cancel latency {worst_latency:?} exceeds the {MAX_CANCEL_LATENCY:?} gate"
    );

    if check_mode {
        println!(
            "pr6_governor --check OK: governed results byte-identical on {} families, \
             overhead within {:.0}% (or {:.1} ms epsilon), cancel latency {worst_latency:?} < {MAX_CANCEL_LATENCY:?}",
            families.len(),
            (MAX_OVERHEAD_RATIO - 1.0) * 100.0,
            OVERHEAD_EPSILON_S * 1e3,
        );
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 6,");
    let _ = writeln!(
        json,
        "  \"title\": \"query governor: overhead of an untrippable budget and cancel latency\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"events\": {}}},",
        store.stats().events
    );
    push_host_meta(&mut json, EngineConfig::default().parallelism);
    let _ = writeln!(json, "  \"reps_best_of\": {reps},");
    let _ = writeln!(
        json,
        "  \"gates\": {{\"max_overhead_ratio\": {MAX_OVERHEAD_RATIO}, \"max_cancel_latency_ms\": {}}},",
        MAX_CANCEL_LATENCY.as_millis()
    );
    let _ = writeln!(
        json,
        "  \"cancel_latency_ms\": {:.3},",
        worst_latency.as_secs_f64() * 1e3
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let ratio = r.governed_ms / r.ungoverned_ms.max(1e-9);
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"ungoverned_ms\": {:.3}, \"governed_ms\": {:.3}, \"overhead_ratio\": {:.4}}}",
            r.name, r.ungoverned_ms, r.governed_ms, ratio
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR6.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
