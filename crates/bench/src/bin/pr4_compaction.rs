//! PR 4 perf trajectory: partition segment compaction, measured as a
//! fragmented-vs-compacted ablation.
//!
//! The store is ingested with `batch_size = 256` and automatic compaction
//! disabled, so every partition fragments into one sealed segment per
//! commit — the layout continuous tiny-batch ingest produces. The
//! compacted store is built from the *identical* raw stream and commit
//! boundaries, then densified with `EventStore::compact()`. Three scenario
//! families run on both layouts:
//!
//! * `a5` — the selective a5-5 catalog investigation (entity postings);
//! * `a2` — the a2-3 catalog investigation (multi-pattern, dictionary);
//! * `multievent` — the 4-pattern chain (join-dominated, exercises the
//!   sharded parallel index build and flat-row accessors per probe).
//!
//! Emits `BENCH_PR4.json` (path via argv[1], default `BENCH_PR4.json`).
//! Pass `--check` for the single-iteration correctness mode used by CI:
//! fragmented, compacted, and auto-compacted stores must return
//! byte-identical tables under every engine data path, `compact()` must
//! reduce segments-per-partition to the configured tier, and a cached plan
//! over uncompacted partitions must survive a compaction elsewhere.

use std::fmt::Write as _;

use aiql_bench::{bench_scale, push_host_meta, time_best_of};
use aiql_engine::{Engine, EngineConfig};
use aiql_model::{AgentId, Operation, Timestamp};
use aiql_sim::{build_store, demo_queries, scenario_demo};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};

/// Tiny-batch ingest: the fragmentation regime the tentpole targets.
const FRAGMENT_BATCH: usize = 256;

/// The join-dominated chain family (same shape as the PR 2/3 chains).
const CHAIN_QUERY: &str = r#"proc p1 write file f as e1
proc p2 read file f as e2
proc p2 write file f2 as e3
proc p3 read file f2 as e4
with e1 before e2, e2 before e3, e3 before e4
return count(e4.amount)"#;

fn catalog_query(id: &str) -> String {
    demo_queries()
        .into_iter()
        .find(|q| q.id == id)
        .unwrap_or_else(|| panic!("catalog query {id} exists"))
        .aiql
}

fn store_config(compaction: bool) -> StoreConfig {
    StoreConfig {
        batch_size: FRAGMENT_BATCH,
        compaction,
        ..StoreConfig::default()
    }
}

/// Warm cache on a day-0 query over a dense partition, compact the
/// fragmented day-2 partition, and assert the cached plan survived.
/// Returns (hits, misses) for the JSON record.
fn assert_cache_survives_compaction() -> (u64, u64) {
    let mut store = EventStore::new(StoreConfig {
        compaction: false,
        dedup: false,
        ..StoreConfig::default()
    });
    store.ingest_all(&[RawEvent::instant(
        AgentId(1),
        Operation::Write,
        EntitySpec::process(7, "svc.exe", "svc"),
        EntitySpec::file("/day0/data", "svc"),
        Timestamp::from_secs(60),
        5,
    )]);
    for i in 0..6 {
        store.ingest_all(&[RawEvent::instant(
            AgentId(1),
            Operation::Write,
            EntitySpec::process(7, "svc.exe", "svc"),
            EntitySpec::file("/day2/data", "svc"),
            Timestamp::from_secs(2 * 86_400 + i * 60),
            5,
        )]);
    }
    let engine = Engine::new(EngineConfig::default());
    let query = r#"(at "01/01/1970") proc p["%svc.exe"] write file f as e return p, f"#;
    let first = engine.execute_text(&store, query).expect("day-0 query");
    assert!(!first.rows.is_empty(), "cache workload must find evidence");
    engine.execute_text(&store, query).expect("day-0 query");
    let (h1, m1) = engine.plan_cache_counters();
    assert!(h1 > 0 && m1 > 0);
    let report = store.compact();
    assert_eq!(report.partitions_compacted, 1, "only day 2 is fragmented");
    let again = engine.execute_text(&store, query).expect("day-0 query");
    let (h2, m2) = engine.plan_cache_counters();
    assert_eq!(again.rows, first.rows, "day-0 results unchanged");
    assert!(
        h2 > h1,
        "cached plan must survive compaction of unread partitions"
    );
    assert_eq!(m2, m1, "compaction elsewhere must not recompute entries");
    (h2, m2)
}

fn main() {
    let arg = std::env::args().nth(1);
    let check_mode = arg.as_deref() == Some("--check");
    let out_path = if check_mode {
        String::new()
    } else {
        arg.unwrap_or_else(|| "BENCH_PR4.json".to_string())
    };
    let reps: usize = if check_mode {
        1
    } else {
        std::env::var("AIQL_BENCH_REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5)
    };

    let scenario = scenario_demo(bench_scale());
    eprintln!(
        "building stores ({} raw events, batch {FRAGMENT_BATCH})...",
        scenario.raws.len()
    );
    let fragmented: EventStore = build_store(&scenario, store_config(false));
    let mut compacted: EventStore = build_store(&scenario, store_config(false));
    let report = compacted.compact();
    let auto: EventStore = build_store(&scenario, store_config(true));
    let frag_stats = fragmented.stats();
    let dense_stats = compacted.stats();
    assert!(
        frag_stats.segments > frag_stats.partitions,
        "tiny-batch ingest must fragment ({} segments / {} partitions)",
        frag_stats.segments,
        frag_stats.partitions
    );
    assert_eq!(
        dense_stats.segments, dense_stats.partitions,
        "compact() must reduce every partition to one dense run at the default tier"
    );
    assert!(report.partitions_compacted > 0);
    eprintln!("fragmented: {}", frag_stats.summary());
    eprintln!("compacted:  {}", dense_stats.summary());

    let families: Vec<(&str, String)> = vec![
        ("a5/catalog-a5-5", catalog_query("a5-5")),
        ("a2/catalog-a2-3", catalog_query("a2-3")),
        ("multievent/4pattern-chain", CHAIN_QUERY.to_string()),
    ];

    // Correctness gate (both modes): the three layouts must return
    // byte-identical tables on every family, across the engine data paths.
    let engine = Engine::new(EngineConfig::default());
    for (name, aiql) in &families {
        let want = engine.execute_text(&fragmented, aiql).expect("fragmented");
        assert!(!want.rows.is_empty(), "{name}: query must find evidence");
        for (layout, store) in [("compacted", &compacted), ("auto", &auto)] {
            let got = engine.execute_text(store, aiql).expect(layout);
            assert_eq!(
                (&want.rows, want.truncated),
                (&got.rows, got.truncated),
                "{name}: {layout} layout diverged from fragmented"
            );
        }
    }
    if check_mode {
        // Sweep the data-path flags on the chain family: flat-row
        // accessors, sharded join-index build, and the materializing path
        // must all be layout-invariant.
        for flags in 0u32..8 {
            let e = Engine::new(EngineConfig {
                parallelism: 2,
                late_materialization: flags & 1 != 0,
                parallel_join: flags & 2 != 0,
                join_partitions: if flags & 2 != 0 { 3 } else { 0 },
                plan_cache: flags & 4 != 0,
                shared_scan_pool: false,
                ..EngineConfig::default()
            });
            let want = e.execute_text(&fragmented, CHAIN_QUERY).expect("chain");
            for store in [&compacted, &auto] {
                let got = e.execute_text(store, CHAIN_QUERY).expect("chain");
                assert_eq!(
                    (&want.rows, want.truncated),
                    (&got.rows, got.truncated),
                    "flags {flags:03b}: layouts diverged"
                );
            }
        }
    }
    let (cache_hits, cache_misses) = assert_cache_survives_compaction();

    if check_mode {
        println!(
            "pr4_compaction --check OK: fragmented ({} segs) / compacted ({} segs) / auto layouts \
             byte-identical on {} families (+ 8 engine flag combos), plan cache survived \
             compaction of unread partitions ({cache_hits} hits / {cache_misses} misses)",
            frag_stats.segments,
            dense_stats.segments,
            families.len()
        );
        return;
    }

    // Timing: per family, the same default engine on both layouts. Fresh
    // engines per layout so plan caches don't leak between stores.
    struct Row {
        name: &'static str,
        fragmented_ms: f64,
        compacted_ms: f64,
        rows: usize,
        join_build_ms: f64,
        join_probe_ms: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (name, aiql) in &families {
        let frag_engine = Engine::new(EngineConfig::default());
        let dense_engine = Engine::new(EngineConfig::default());
        // Warm pools + caches the same way on both layouts.
        let nrows = frag_engine
            .execute_text(&fragmented, aiql)
            .expect("q")
            .len();
        dense_engine.execute_text(&compacted, aiql).expect("q");
        let frag_s = time_best_of(reps, || {
            frag_engine
                .execute_text(&fragmented, aiql)
                .expect("q")
                .len()
        });
        let dense_s = time_best_of(reps, || {
            dense_engine
                .execute_text(&compacted, aiql)
                .expect("q")
                .len()
        });
        // Join build/probe split on the compacted layout (0 for
        // single-pattern families whose join degenerates).
        let (mut build_ms, mut probe_ms) = (0.0, 0.0);
        if let Ok(aiql_lang::Query::Multievent(m)) = aiql_lang::parse_query(aiql) {
            if let Ok((_, stats)) = dense_engine.execute_multievent_with_stats(&compacted, &m) {
                if let Some(join) = stats.ops.iter().find(|o| o.kind == "TemporalJoin") {
                    build_ms = join.build_nanos as f64 / 1e6;
                    probe_ms = join.probe_nanos as f64 / 1e6;
                }
            }
        }
        eprintln!(
            "{name}: fragmented {:.3} ms, compacted {:.3} ms ({:.2}×), {nrows} row(s)",
            frag_s * 1e3,
            dense_s * 1e3,
            frag_s / dense_s.max(1e-9)
        );
        rows.push(Row {
            name,
            fragmented_ms: frag_s * 1e3,
            compacted_ms: dense_s * 1e3,
            rows: nrows,
            join_build_ms: build_ms,
            join_probe_ms: probe_ms,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 4,");
    let _ = writeln!(
        json,
        "  \"title\": \"partition segment compaction: fragmented vs compacted query ablation\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"events\": {}, \"batch_size\": {FRAGMENT_BATCH}, \"fragmented_segments\": {}, \"compacted_segments\": {}, \"partitions\": {}, \"max_segments_per_partition_fragmented\": {}}},",
        frag_stats.events,
        frag_stats.segments,
        dense_stats.segments,
        frag_stats.partitions,
        frag_stats.max_partition_segments,
    );
    push_host_meta(&mut json, EngineConfig::default().parallelism);
    let _ = writeln!(json, "  \"reps_best_of\": {reps},");
    let _ = writeln!(
        json,
        "  \"note\": \"identical raw stream and commit boundaries on both layouts; results asserted byte-identical before timing\","
    );
    let _ = writeln!(
        json,
        "  \"plan_cache\": {{\"survives_compaction_of_unread_partitions\": true, \"hits\": {cache_hits}, \"misses\": {cache_misses}}},"
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.fragmented_ms / r.compacted_ms.max(1e-9);
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"fragmented_ms\": {:.3}, \"compacted_ms\": {:.3}, \"speedup\": {:.2}, \"result_rows\": {}, \"join_build_ms\": {:.3}, \"join_probe_ms\": {:.3}}}",
            r.name, r.fragmented_ms, r.compacted_ms, speedup, r.rows, r.join_build_ms, r.join_probe_ms
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR4.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
