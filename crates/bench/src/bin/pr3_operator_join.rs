//! PR 3 perf trajectory: the operator pipeline's parallel multievent join,
//! measured as a serial-vs-parallel ablation at 1/2/4/8 threads.
//!
//! The workload is join-dominated by construction: per host, groups of a
//! 4-stage pipeline (`p1 write f → p2 read f → p2 write f2 → p3 read f2`)
//! with `k` events per stage, so a 4-pattern chain query joins to `k⁴`
//! tuples per group while the scans stay cheap. Background noise events
//! keep the scans honest.
//!
//! Emits `BENCH_PR3.json` (path via argv[1], default `BENCH_PR3.json`):
//! per thread count, the chain query with `parallel_join` off vs on —
//! everything else (scan parallelism, pool, late materialization)
//! identical, private pools sized to the thread count so thread counts
//! mean what they say. Also records the plan-cache partition-scoped
//! invalidation behavior (hits surviving an ingest into an untouched
//! partition).
//!
//! Run with `cargo run --release -p aiql-bench --bin pr3_operator_join`.
//! Pass `--check` for the single-iteration correctness mode used by CI:
//! every configuration (including truncating `max_intermediate` values)
//! must return byte-identical tables, and the plan-cache property is
//! asserted, instead of timing anything.

use std::fmt::Write as _;

use aiql_bench::{push_host_meta, time_best_of};
use aiql_engine::{Engine, EngineConfig};
use aiql_model::{AgentId, Operation, Timestamp};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};

// Stage-constrained chain: each pattern resolves to one pipeline stage,
// so candidate lists are equal-sized and the size-ordered join visits the
// chain in connected order (every step shares a variable with the frontier
// — no cartesian blowup, the shape the paper's investigations have).
const CHAIN_QUERY: &str = r#"proc p1["%stage1-writer.exe"] write file f as e1
proc p2["%stage2-etl.exe"] read file f as e2
proc p2 write file f2 as e3
proc p3["%stage3-reader.exe"] read file f2 as e4
with e1 before e2, e2 before e3, e3 before e4
return count(e4.amount)"#;

/// Day-0-windowed query for the plan-cache demonstration.
const CACHED_QUERY: &str =
    r#"(at "01/01/1970") proc p["%stage1-writer.exe"] write file f as e return p, f"#;

/// Builds the join-heavy store: `groups` 4-stage pipelines per host with
/// `k` events per stage, plus one noise event per group.
fn join_heavy_store(hosts: u32, groups: usize, k: usize) -> EventStore {
    let mut raws = Vec::new();
    for h in 0..hosts {
        for g in 0..groups {
            let t0 = (g as i64) * 240; // 4 minutes per group
            let f1 = format!("/data/h{h}/g{g}/stage1");
            let f2 = format!("/data/h{h}/g{g}/stage2");
            let pid = (g as u32) * 8;
            let p1 = EntitySpec::process(1000 + pid, "stage1-writer.exe", "svc");
            let p2 = EntitySpec::process(2000 + pid, "stage2-etl.exe", "svc");
            let p3 = EntitySpec::process(3000 + pid, "stage3-reader.exe", "svc");
            for j in 0..k {
                let j = j as i64;
                let mk = |op, s: &EntitySpec, o: &EntitySpec, t: i64| {
                    RawEvent::instant(
                        AgentId(h),
                        op,
                        s.clone(),
                        o.clone(),
                        Timestamp::from_secs(t),
                        64,
                    )
                };
                raws.push(mk(
                    Operation::Write,
                    &p1,
                    &EntitySpec::file(&f1, "svc"),
                    t0 + j,
                ));
                raws.push(mk(
                    Operation::Read,
                    &p2,
                    &EntitySpec::file(&f1, "svc"),
                    t0 + 60 + j,
                ));
                raws.push(mk(
                    Operation::Write,
                    &p2,
                    &EntitySpec::file(&f2, "svc"),
                    t0 + 120 + j,
                ));
                raws.push(mk(
                    Operation::Read,
                    &p3,
                    &EntitySpec::file(&f2, "svc"),
                    t0 + 180 + j,
                ));
            }
            // Noise: an unrelated connect per group.
            raws.push(RawEvent::instant(
                AgentId(h),
                Operation::Connect,
                EntitySpec::process(4000 + pid, "browser.exe", "user"),
                EntitySpec::tcp(
                    aiql_model::IpV4::from_octets(10, 0, 0, 1),
                    40_000,
                    aiql_model::IpV4::from_octets(93, 184, 216, 34),
                    443,
                ),
                Timestamp::from_secs(t0 + 30),
                1,
            ));
        }
    }
    let mut store = EventStore::new(StoreConfig {
        dedup: false,
        ..StoreConfig::default()
    });
    store.ingest_all(&raws);
    store
}

/// Engine with the operator pipeline at `threads`, join parallelism
/// toggled. Private pool so the thread count is exactly `threads`.
fn engine(threads: usize, parallel_join: bool) -> Engine {
    Engine::new(EngineConfig {
        parallelism: threads,
        parallel_join,
        shared_scan_pool: false,
        ..EngineConfig::default()
    })
}

/// Asserts the partition-scoped plan cache keeps a windowed plan hot
/// across an ingest into a partition it never read. Returns (hits,
/// misses) after the sequence, for the JSON record.
fn assert_cache_survives_ingest(store: &mut EventStore) -> (u64, u64) {
    let e = Engine::new(EngineConfig::default());
    let first = e.execute_text(store, CACHED_QUERY).expect("cached query");
    assert!(!first.rows.is_empty(), "cache workload must find evidence");
    e.execute_text(store, CACHED_QUERY).expect("cached query");
    let (h1, m1) = e.plan_cache_counters();
    assert!(h1 > 0 && m1 > 0);
    // Two days later, entities already interned: new partition, untouched
    // dictionary and day-0 buckets.
    store.ingest_all(&[RawEvent::instant(
        AgentId(0),
        Operation::Write,
        EntitySpec::process(1000, "stage1-writer.exe", "svc"),
        EntitySpec::file("/data/h0/g0/stage1", "svc"),
        Timestamp::from_secs(2 * 86_400),
        64,
    )]);
    let again = e.execute_text(store, CACHED_QUERY).expect("cached query");
    let (h2, m2) = e.plan_cache_counters();
    assert_eq!(again.rows, first.rows, "day-0 results unchanged");
    assert!(
        h2 > h1,
        "plan-cache hit must survive ingest into an untouched partition"
    );
    assert_eq!(
        m2, m1,
        "ingest into an untouched partition must not recompute cache entries"
    );
    (h2, m2)
}

fn main() {
    let arg = std::env::args().nth(1);
    let check_mode = arg.as_deref() == Some("--check");
    let out_path = if check_mode {
        String::new()
    } else {
        arg.unwrap_or_else(|| "BENCH_PR3.json".to_string())
    };
    let reps: usize = if check_mode {
        1
    } else {
        std::env::var("AIQL_BENCH_REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5)
    };
    let groups: usize = std::env::var("AIQL_BENCH_GROUPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if check_mode { 8 } else { 100 });
    let k = if check_mode { 3 } else { 4 };

    let hosts = 8u32;
    eprintln!("building join-heavy store ({hosts} hosts × {groups} groups × k={k})...");
    let mut store = join_heavy_store(hosts, groups, k);
    let total_events = store.event_count();

    // Correctness gate (always, both modes): serial vs parallel join at
    // every thread count — and under truncating max_intermediate values in
    // check mode — must return byte-identical tables.
    let reference = engine(1, false);
    let want = reference.execute_text(&store, CHAIN_QUERY).expect("chain");
    assert!(!want.rows.is_empty());
    let thread_counts = [1usize, 2, 4, 8];
    for &t in &thread_counts {
        for pj in [false, true] {
            let got = engine(t, pj)
                .execute_text(&store, CHAIN_QUERY)
                .expect("chain");
            assert_eq!(
                (&want.rows, want.truncated),
                (&got.rows, got.truncated),
                "threads {t} parallel_join {pj}: result diverged from serial"
            );
        }
    }
    if check_mode {
        for max in [1usize, 7, 1000] {
            let serial = Engine::new(EngineConfig {
                parallel_join: false,
                max_intermediate: max,
                ..EngineConfig::default()
            });
            let parallel = Engine::new(EngineConfig {
                parallelism: 8,
                parallel_join: true,
                join_partitions: 8,
                shared_scan_pool: false,
                max_intermediate: max,
                ..EngineConfig::default()
            });
            let a = serial.execute_text(&store, CHAIN_QUERY).expect("chain");
            let b = parallel.execute_text(&store, CHAIN_QUERY).expect("chain");
            assert_eq!(
                (&a.rows, a.truncated),
                (&b.rows, b.truncated),
                "max_intermediate {max}: truncated results diverged"
            );
        }
    }
    let (cache_hits, cache_misses) = assert_cache_survives_ingest(&mut store);

    if check_mode {
        println!(
            "pr3_operator_join --check OK: serial/parallel join agree at threads {thread_counts:?} \
             (+ truncation at max_intermediate 1/7/1000), plan-cache hit survived untouched-partition \
             ingest ({cache_hits} hits / {cache_misses} misses) over {total_events} events"
        );
        return;
    }

    // Timing: per thread count, the chain with the join serial vs
    // partitioned. Warm each engine's pool before timing.
    struct Row {
        threads: usize,
        serial_ms: f64,
        parallel_ms: f64,
        tuples: usize,
    }
    let mut rows = Vec::new();
    for &t in &thread_counts {
        let serial = engine(t, false);
        let parallel = engine(t, true);
        let mut tuples = 0usize;
        for e in [&serial, &parallel] {
            let q = aiql_lang::parse_query(CHAIN_QUERY).expect("parse");
            let aiql_lang::Query::Multievent(m) = &q else {
                unreachable!()
            };
            let (_, stats) = e.execute_multievent_with_stats(&store, m).expect("chain");
            tuples = stats.tuples;
        }
        let serial_s = time_best_of(reps, || {
            serial
                .execute_text(&store, CHAIN_QUERY)
                .expect("chain")
                .len()
        });
        let parallel_s = time_best_of(reps, || {
            parallel
                .execute_text(&store, CHAIN_QUERY)
                .expect("chain")
                .len()
        });
        eprintln!(
            "threads {t}: serial {:.2} ms, parallel {:.2} ms ({:.2}×), {tuples} joined tuples",
            serial_s * 1e3,
            parallel_s * 1e3,
            serial_s / parallel_s.max(1e-9)
        );
        rows.push(Row {
            threads: t,
            serial_ms: serial_s * 1e3,
            parallel_ms: parallel_s * 1e3,
            tuples,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 3,");
    let _ = writeln!(
        json,
        "  \"title\": \"operator-pipeline parallel multievent join: serial vs frontier-partitioned ablation\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"kind\": \"4-stage pipeline chain\", \"hosts\": {hosts}, \"groups_per_host\": {groups}, \"events\": {total_events}, \"query\": \"4-pattern chain, 3 temporal relations\"}},"
    );
    push_host_meta(&mut json, EngineConfig::default().parallelism);
    let _ = writeln!(json, "  \"reps_best_of\": {reps},");
    let _ = writeln!(
        json,
        "  \"note\": \"serial and parallel paths asserted byte-identical before timing; speedups are bounded by host_cores — on a single-core host the parallel path measures its own overhead\","
    );
    let _ = writeln!(
        json,
        "  \"plan_cache\": {{\"survives_untouched_partition_ingest\": true, \"hits\": {cache_hits}, \"misses\": {cache_misses}}},"
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.serial_ms / r.parallel_ms.max(1e-9);
        let _ = write!(
            json,
            "    {{\"name\": \"chain-4pattern/threads-{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.2}, \"joined_tuples\": {}}}",
            r.threads, r.serial_ms, r.parallel_ms, speedup, r.tuples
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR3.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
