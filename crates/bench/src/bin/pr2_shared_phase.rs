//! PR 2 perf trajectory: compiling the shared phase — n-gram dictionary
//! indexes, the plan-resolution cache, slot-compiled projection, and
//! vectorized residual filters — measured against the PR 1 pipeline.
//!
//! Emits `BENCH_PR2.json` (path via argv[1], default `BENCH_PR2.json`)
//! comparing, per workload:
//!
//! * `baseline` — the PR 1 optimized pipeline with every PR 2 optimization
//!   off (`StoreConfig::{ngram_index, vectorized_residual} = false`,
//!   `EngineConfig::{plan_cache, compiled_projection} = false`);
//! * `optimized` — everything on (the new defaults).
//!
//! Ablation rows isolate each tentpole contribution by adding exactly one
//! optimization onto the PR 1 baseline.
//!
//! Run with `cargo run --release -p aiql-bench --bin pr2_shared_phase`.
//! Pass `--check` for the single-iteration correctness mode used by CI: it
//! executes every workload once per configuration and asserts identical
//! results instead of timing them.

use std::fmt::Write as _;

use aiql_bench::{bench_scale, push_host_meta, time_best_of};
use aiql_engine::{Engine, EngineConfig};
use aiql_model::StringPattern;
use aiql_sim::{build_store, demo_queries, scenario_demo};
use aiql_storage::{AttrCmp, EntityConstraint, EventFilter, EventStore, OpSet, StoreConfig};

struct Row {
    name: &'static str,
    unit: &'static str,
    baseline_ms: f64,
    optimized_ms: f64,
    detail: String,
}

fn store_config(ngram_index: bool, vectorized_residual: bool) -> StoreConfig {
    StoreConfig {
        ngram_index,
        vectorized_residual,
        ..StoreConfig::default()
    }
}

fn engine_config(plan_cache: bool, compiled_projection: bool) -> EngineConfig {
    EngineConfig {
        plan_cache,
        compiled_projection,
        ..EngineConfig::default()
    }
}

/// The catalog queries the acceptance criteria name, plus the multievent
/// chains that must not regress.
const CHAINS: [(&str, &str); 3] = [
    (
        "multievent/4pattern-chain",
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           proc p2 write file f2 as e3
           proc p3 read file f2 as e4
           with e1 before e2, e2 before e3, e3 before e4
           return count(e4.amount)"#,
    ),
    (
        "multievent/3pattern-exfil",
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           proc p2 write ip i as e3
           with e1 before e2, e2 before e3
           return count(e3.amount)"#,
    ),
    (
        "multievent/2pattern-join",
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return count(e2.amount)"#,
    ),
];

/// Projection-heavy aggregation: many surviving tuples, grouped output.
const PROJECTION_QUERY: &str = r#"proc p write file f as e
return p, f, count(e.amount) as n, sum(e.amount) as total
group by p, f"#;

/// LIKE patterns of the paper's investigations, resolved per engine run.
const LIKE_PATTERNS: [&str; 5] = [
    "%cmd.exe",
    "%osql.exe",
    "%sqlservr.exe",
    "%backup1.dmp",
    "%sbblv%",
];

fn like_resolution(store: &EventStore) -> usize {
    let mut total = 0;
    for pat in LIKE_PATTERNS {
        let c = [EntityConstraint::on_default(AttrCmp::Like(
            StringPattern::new(pat),
        ))];
        for kind in [
            aiql_model::EntityKind::Process,
            aiql_model::EntityKind::File,
        ] {
            total += store.entities().find(kind, None, &c).len();
        }
    }
    total
}

fn catalog_query(id: &str) -> String {
    demo_queries()
        .into_iter()
        .find(|q| q.id == id)
        .unwrap_or_else(|| panic!("catalog query {id} exists"))
        .aiql
}

fn main() {
    let arg = std::env::args().nth(1);
    let check_mode = arg.as_deref() == Some("--check");
    let out_path = if check_mode {
        String::new()
    } else {
        arg.unwrap_or_else(|| "BENCH_PR2.json".to_string())
    };
    let reps: usize = if check_mode {
        1
    } else {
        std::env::var("AIQL_BENCH_REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5)
    };

    let scenario = scenario_demo(bench_scale());
    eprintln!("building stores ({} raw events)...", scenario.raws.len());
    let pr1_store: EventStore = build_store(&scenario, store_config(false, false));
    let pr2_store: EventStore = build_store(&scenario, store_config(true, true));
    let ngram_store: EventStore = build_store(&scenario, store_config(true, false));
    let vec_store: EventStore = build_store(&scenario, store_config(false, true));
    let total_events = pr2_store.event_count();

    let pr1_engine = Engine::new(engine_config(false, false));
    let pr2_engine = Engine::new(engine_config(true, true));
    let cache_engine = Engine::new(engine_config(true, false));
    let slot_engine = Engine::new(engine_config(false, true));
    // Warm the persistent pools before timing.
    for (engine, store) in [
        (&pr1_engine, &pr1_store),
        (&pr2_engine, &pr2_store),
        (&cache_engine, &pr1_store),
        (&slot_engine, &pr1_store),
    ] {
        let _ = engine.execute_text(store, "proc p execute file f as e return p");
    }

    let mut rows: Vec<Row> = Vec::new();
    let check = |name: &str, a: &aiql_engine::ResultTable, b: &aiql_engine::ResultTable| {
        assert_eq!(a.rows, b.rows, "{name}: rows/order must be identical");
        assert_eq!(a.columns, b.columns, "{name}: columns must be identical");
    };

    // 1. End-to-end selective catalog queries (the acceptance rows): the
    // full PR 2 shared phase vs the PR 1 pipeline, repeated-execution
    // regime (an investigator iterating on a query — §6 of the paper).
    for (name, id) in [
        ("catalog/a5-5-selective", "a5-5"),
        ("catalog/a2-3-selective", "a2-3"),
    ] {
        let aiql = catalog_query(id);
        let want = pr1_engine
            .execute_text(&pr1_store, &aiql)
            .expect("baseline");
        let got = pr2_engine
            .execute_text(&pr2_store, &aiql)
            .expect("optimized");
        check(name, &want, &got);
        assert!(!got.rows.is_empty(), "{name}: query must find evidence");
        let base = time_best_of(reps, || {
            pr1_engine.execute_text(&pr1_store, &aiql).expect("q").len()
        });
        let opt = time_best_of(reps, || {
            pr2_engine.execute_text(&pr2_store, &aiql).expect("q").len()
        });
        rows.push(Row {
            name,
            unit: "ms",
            baseline_ms: base * 1e3,
            optimized_ms: opt * 1e3,
            detail: format!(
                "end-to-end, {} result row(s); PR1 pipeline vs compiled shared phase",
                got.len()
            ),
        });
    }

    // 2. Multievent chains: must stay within 5% of the PR 1 pipeline.
    for (name, src) in CHAINS {
        let want = pr1_engine.execute_text(&pr1_store, src).expect("baseline");
        let got = pr2_engine.execute_text(&pr2_store, src).expect("optimized");
        check(name, &want, &got);
        let base = time_best_of(reps, || {
            pr1_engine.execute_text(&pr1_store, src).expect("q").len()
        });
        let opt = time_best_of(reps, || {
            pr2_engine.execute_text(&pr2_store, src).expect("q").len()
        });
        rows.push(Row {
            name,
            unit: "ms",
            baseline_ms: base * 1e3,
            optimized_ms: opt * 1e3,
            detail: format!(
                "regression guard; optimized {:.2} Mevents/s through scan+join",
                total_events as f64 / opt / 1e6
            ),
        });
    }

    // 3. Ablations: exactly one optimization added onto the PR 1 baseline.
    // 3a. N-gram dictionary index, isolated on raw LIKE resolution.
    let naive_n = like_resolution(&pr1_store);
    assert_eq!(
        naive_n,
        like_resolution(&ngram_store),
        "indexed and naive LIKE resolution must agree"
    );
    let base = time_best_of(reps, || like_resolution(&pr1_store));
    let opt = time_best_of(reps, || like_resolution(&ngram_store));
    rows.push(Row {
        name: "ablation/dict-ngram-index",
        unit: "ms",
        baseline_ms: base * 1e3,
        optimized_ms: opt * 1e3,
        detail: format!(
            "{naive_n} ids from {} investigation LIKE patterns over {} dictionary entries",
            LIKE_PATTERNS.len() * 2,
            pr2_store.entities().len()
        ),
    });

    // 3b. Plan-resolution cache, isolated on the a5-5 end-to-end loop.
    let aiql = catalog_query("a5-5");
    let want = pr1_engine
        .execute_text(&pr1_store, &aiql)
        .expect("baseline");
    let got = cache_engine
        .execute_text(&pr1_store, &aiql)
        .expect("cached");
    check("ablation/plan-cache", &want, &got);
    let base = time_best_of(reps, || {
        pr1_engine.execute_text(&pr1_store, &aiql).expect("q").len()
    });
    let opt = time_best_of(reps, || {
        cache_engine
            .execute_text(&pr1_store, &aiql)
            .expect("q")
            .len()
    });
    rows.push(Row {
        name: "ablation/plan-cache",
        unit: "ms",
        baseline_ms: base * 1e3,
        optimized_ms: opt * 1e3,
        detail: "a5-5 repeated-execution loop; only EngineConfig::plan_cache added".to_string(),
    });

    // 3c. Slot-compiled projection, isolated on a projection-heavy group-by.
    let want = pr1_engine
        .execute_text(&pr1_store, PROJECTION_QUERY)
        .expect("baseline");
    let got = slot_engine
        .execute_text(&pr1_store, PROJECTION_QUERY)
        .expect("compiled");
    check("ablation/slot-projection", &want, &got);
    let groups = got.len();
    let base = time_best_of(reps, || {
        pr1_engine
            .execute_text(&pr1_store, PROJECTION_QUERY)
            .expect("q")
            .len()
    });
    let opt = time_best_of(reps, || {
        slot_engine
            .execute_text(&pr1_store, PROJECTION_QUERY)
            .expect("q")
            .len()
    });
    rows.push(Row {
        name: "ablation/slot-projection",
        unit: "ms",
        baseline_ms: base * 1e3,
        optimized_ms: opt * 1e3,
        detail: format!(
            "{groups} groups; only EngineConfig::compiled_projection added (RowCtx hash maps → slots)"
        ),
    });

    // 3d. Vectorized residual pass, isolated on a store-wide columnar sweep
    // (no posting-list access path, so the residual loop decides).
    let filter = EventFilter::all().with_ops(OpSet::from_ops(&[
        aiql_model::Operation::Read,
        aiql_model::Operation::Write,
    ]));
    let matched = pr1_store.count(&filter);
    assert_eq!(matched, vec_store.count(&filter), "scan paths must agree");
    let base = time_best_of(reps, || pr1_store.count(&filter));
    let opt = time_best_of(reps, || vec_store.count(&filter));
    rows.push(Row {
        name: "ablation/vectorized-residual",
        unit: "ms",
        baseline_ms: base * 1e3,
        optimized_ms: opt * 1e3,
        detail: format!(
            "{matched} of {total_events} events matched; only StoreConfig::vectorized_residual added"
        ),
    });

    if check_mode {
        println!(
            "pr2_shared_phase --check OK: {} workloads agree across all configurations ({} events)",
            rows.len(),
            total_events
        );
        return;
    }

    // Render JSON by hand (no serde in the offline environment).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 2,");
    let _ = writeln!(
        json,
        "  \"title\": \"compiled shared phase (ngram dictionary index + plan cache + slot projection + vectorized residual) vs PR 1 pipeline\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"scenario\": \"demo attack (fig4)\", \"hosts\": {}, \"events\": {}}},",
        bench_scale().hosts,
        total_events
    );
    let _ = writeln!(json, "  \"reps_best_of\": {reps},");
    push_host_meta(&mut json, EngineConfig::default().parallelism);
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.baseline_ms / r.optimized_ms.max(1e-9);
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"baseline_{}\": {:.3}, \"optimized_{}\": {:.3}, \"speedup\": {:.2}, \"detail\": \"{}\"}}",
            r.name, r.unit, r.baseline_ms, r.unit, r.optimized_ms, speedup,
            r.detail.replace('"', "'")
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR2.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
