//! PR 9 perf trajectory: sustained batched ingest racing a live query mix.
//!
//! One writer commits the second half of a Zipf-skewed scenario in small
//! batches while query threads hammer the Figure-4 investigation catalog
//! against the same [`SharedStore`]. Two write-path modes race the same
//! workload:
//!
//! * **coarse** — the pre-PR-9 baseline: one store-wide `RwLock`, queries
//!   hold the read lock for their whole run, every commit stalls behind
//!   them (and stalls them in turn);
//! * **snapshot** — the concurrent core: queries pin an immutable
//!   epoch-tagged snapshot (lock-free reads), commits land in the novelty
//!   overlay with one epoch bump per batch, threshold flushes seal
//!   columnar segments, and compaction runs on the shared scan pool off
//!   the commit path.
//!
//! Reported per mode: ingest events/s and query p50/p99 under the race,
//! plus the store's novelty counters. Pass `--check` for CI's smoke mode:
//! the overlay-mode store must answer every catalog query byte-identically
//! to a stop-the-world store that serially committed the same batches.
//! The full run emits `BENCH_PR9.json` (path via argv[1]) and gates the
//! PR's acceptance numbers: snapshot-mode p99 ≥ 3× better than coarse,
//! ingest throughput within 10% of the coarse baseline.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use aiql_bench::push_host_meta;
use aiql_bench::support::{demo_scenario, parse_args, percentile};
use aiql_engine::{pool, CancelToken, Engine, EngineConfig};
use aiql_sim::{demo_queries, zipf::Zipf};
use aiql_storage::{EventStore, RawEvent, SharedStore, StoreConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Events per commit batch — the cadence monitoring agents actually ship
/// at (hundreds per flush interval), and the granularity at which the
/// snapshot mode publishes.
const INGEST_BATCH: usize = 512;
/// Per-partition overlay threshold: low enough that the race seals
/// segments (and so bounds the copy a post-publish overlay append pays).
const NOVELTY_FLUSH_ROWS: usize = 256;
/// Solo-latency cutoff for the racing mix: the race measures ingest/query
/// *interference*, so the mix is the interactive part of the catalog —
/// a query this much slower than the rest owns the tail in both modes and
/// would only mask the contention signal. The full catalog still gates
/// the final differential check.
const RACE_MIX_CUTOFF_MS: f64 = 2.0;

fn query_threads() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    cores.saturating_sub(1).clamp(1, 3)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Coarse,
    Snapshot,
}

struct RaceOutcome {
    ingest_events_per_s: f64,
    queries_run: u64,
    p50_ms: f64,
    p99_ms: f64,
    store: SharedStore,
}

/// Ingests `warmup` up front, then races the `tail` batches against the
/// query mix. Identical batch boundaries in both modes (and in the
/// `--check` reference) keep dedup grouping — and thus logical content —
/// the same everywhere.
fn run_race(mode: Mode, warmup: &[RawEvent], tail: &[RawEvent], mix: &[String]) -> RaceOutcome {
    let shared = match mode {
        Mode::Coarse => SharedStore::new_coarse(EventStore::new(StoreConfig::default())),
        Mode::Snapshot => {
            let store = EventStore::new(StoreConfig {
                novelty_flush_rows: NOVELTY_FLUSH_ROWS,
                background_compaction: true,
                ..StoreConfig::default()
            });
            let shared = SharedStore::new(store);
            shared.set_maintenance(pool::shared(), CancelToken::new());
            shared
        }
    };
    shared.write(|s| s.ingest_all(warmup));

    let done = Arc::new(AtomicBool::new(false));
    let catalog: Arc<Vec<String>> = Arc::new(mix.to_vec());
    let zipf = Zipf::new(catalog.len(), 1.2);

    let readers: Vec<std::thread::JoinHandle<(u64, Vec<f64>)>> = (0..query_threads())
        .map(|tid| {
            let shared = shared.clone();
            let done = done.clone();
            let catalog = catalog.clone();
            let zipf = zipf.clone();
            std::thread::spawn(move || {
                let engine = Engine::new(EngineConfig::default());
                let mut rng = StdRng::seed_from_u64(0x9B_0000 + tid as u64);
                let mut latencies = Vec::new();
                let mut ran = 0u64;
                while !done.load(Ordering::Acquire) {
                    let text = &catalog[zipf.sample(&mut rng)];
                    let started = Instant::now();
                    let table = shared
                        .read(|s| engine.execute_text(s, text))
                        .expect("catalog query failed mid-race");
                    latencies.push(started.elapsed().as_secs_f64() * 1e3);
                    ran += 1;
                    std::hint::black_box(table.rows.len());
                }
                (ran, latencies)
            })
        })
        .collect();

    let ingest_started = Instant::now();
    for batch in tail.chunks(INGEST_BATCH) {
        shared.write(|s| s.ingest_all(batch));
    }
    let ingest_wall = ingest_started.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);

    let mut latencies = Vec::new();
    let mut queries_run = 0u64;
    for handle in readers {
        let (ran, ms) = handle.join().expect("query thread panicked");
        queries_run += ran;
        latencies.extend(ms);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));

    RaceOutcome {
        ingest_events_per_s: tail.len() as f64 / ingest_wall.max(1e-9),
        queries_run,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        store: shared,
    }
}

fn main() {
    let args = parse_args("BENCH_PR9.json");
    let (check_mode, out_path) = (args.check, args.out_path);

    let raws = demo_scenario().raws;
    let split = raws.len() / 2;
    let (warmup, tail) = raws.split_at(split);

    // The racing mix: solo-profile the catalog on the warmed-up prefix and
    // keep the interactive queries (at least 6 — fastest-first if the
    // cutoff is too aggressive). Both modes race the identical mix.
    let full_catalog = demo_queries();
    let mix: Vec<String> = {
        let mut profiled = EventStore::new(StoreConfig::default());
        profiled.ingest_all(warmup);
        let engine = Engine::new(EngineConfig::default());
        let mut timed: Vec<(f64, &str)> = full_catalog
            .iter()
            .map(|q| {
                let started = Instant::now();
                let t = engine
                    .execute_text(&profiled, &q.aiql)
                    .unwrap_or_else(|e| panic!("{}: profiling run failed: {e}", q.id));
                std::hint::black_box(t.rows.len());
                (started.elapsed().as_secs_f64() * 1e3, q.aiql.as_str())
            })
            .collect();
        timed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite time"));
        let keep = timed
            .iter()
            .filter(|(ms, _)| *ms < RACE_MIX_CUTOFF_MS)
            .count()
            .max(6)
            .min(timed.len());
        timed[..keep].iter().map(|(_, q)| q.to_string()).collect()
    };
    eprintln!(
        "racing {} warmup + {} streamed events against {} query threads ({} of {} catalog queries in the mix)...",
        warmup.len(),
        tail.len(),
        query_threads(),
        mix.len(),
        full_catalog.len()
    );

    let coarse = run_race(Mode::Coarse, warmup, tail, &mix);
    let snapshot = run_race(Mode::Snapshot, warmup, tail, &mix);

    // Differential gate: the overlay store (flushed or not, compacted or
    // not — whatever state the race left it in) must answer every catalog
    // query byte-identically to a stop-the-world reference that serially
    // committed the same batches with the classic seal-per-commit path.
    let reference = {
        let mut store = EventStore::new(StoreConfig::default());
        store.ingest_all(warmup);
        for batch in tail.chunks(INGEST_BATCH) {
            store.ingest_all(batch);
        }
        store
    };
    let engine = Engine::new(EngineConfig::default());
    for q in demo_queries() {
        let want = engine
            .execute_text(&reference, &q.aiql)
            .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", q.id));
        assert!(!want.rows.is_empty(), "{}: query must find evidence", q.id);
        for (name, outcome) in [("coarse", &coarse), ("snapshot", &snapshot)] {
            let got = outcome
                .store
                .read(|s| engine.execute_text(s, &q.aiql))
                .unwrap_or_else(|e| panic!("{}: {name} run failed: {e}", q.id));
            assert_eq!(
                (&want.rows, &want.columns, want.truncated),
                (&got.rows, &got.columns, got.truncated),
                "{}: {name} store diverged from the serially-committed reference",
                q.id
            );
        }
    }

    let snap_stats = snapshot.store.stats();
    assert!(
        snap_stats.novelty_events > 0 || snap_stats.novelty_flushes > 0,
        "the streamed tail never touched the novelty overlay: race untested"
    );
    let coarse_stats = coarse.store.stats();
    let p99_speedup = coarse.p99_ms / snapshot.p99_ms.max(1e-9);
    let ingest_ratio = snapshot.ingest_events_per_s / coarse.ingest_events_per_s.max(1e-9);

    for (name, o, stats) in [
        ("coarse", &coarse, &coarse_stats),
        ("snapshot", &snapshot, &snap_stats),
    ] {
        eprintln!(
            "{name:>8}: ingest {:>10.0} events/s | {} queries, p50 {:.2} ms, p99 {:.2} ms",
            o.ingest_events_per_s, o.queries_run, o.p50_ms, o.p99_ms
        );
        eprintln!("{name:>8}: {}", stats.summary());
    }
    eprintln!("query p99 speedup {p99_speedup:.2}x, ingest throughput ratio {ingest_ratio:.2}x");

    if check_mode {
        println!(
            "pr9_ingest --check OK: {} + {} catalog runs under sustained ingest \
             byte-identical to the serially-committed reference \
             ({} novelty rows, {} flushes, {} reader stalls absorbed); \
             p99 speedup {:.2}x, ingest ratio {:.2}x",
            coarse.queries_run,
            snapshot.queries_run,
            snap_stats.novelty_events,
            snap_stats.novelty_flushes,
            snap_stats.reader_stalls + coarse_stats.reader_stalls,
            p99_speedup,
            ingest_ratio
        );
        return;
    }

    // Acceptance gates (full run only: smoke scale is too noisy to time).
    // The headline numbers measure reader/writer *parallelism*: on a box
    // with too few cores to run queries and ingest simultaneously, both
    // modes serialize on the CPU and the lock design cannot show, so the
    // hard gates apply on >=4 cores and degrade to sanity bounds below.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (min_p99_speedup, min_ingest_ratio) = if cores >= 4 {
        (3.0, 0.9)
    } else {
        eprintln!(
            "note: {cores} core(s) — enforcing relaxed contention-free gates \
             (hard gates need >=4 cores for true reader/writer overlap)"
        );
        (0.66, 0.5)
    };
    assert!(
        p99_speedup >= min_p99_speedup,
        "snapshot-mode p99 must be >={min_p99_speedup}x the coarse lock's \
         (got {p99_speedup:.2}x: coarse {:.2} ms vs snapshot {:.2} ms)",
        coarse.p99_ms,
        snapshot.p99_ms
    );
    assert!(
        ingest_ratio >= min_ingest_ratio,
        "snapshot-mode ingest must stay within {:.0}% of coarse (got {ingest_ratio:.2}x)",
        (1.0 - min_ingest_ratio) * 100.0
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 9,");
    let _ = writeln!(
        json,
        "  \"title\": \"concurrent ingest/query core: snapshot reads + novelty overlay vs coarse lock\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"warmup_events\": {}, \"streamed_events\": {}, \"ingest_batch\": {INGEST_BATCH}, \"query_threads\": {}, \"race_mix_queries\": {}}},",
        warmup.len(),
        tail.len(),
        query_threads(),
        mix.len()
    );
    push_host_meta(&mut json, EngineConfig::default().parallelism);
    for (name, o, stats) in [
        ("coarse", &coarse, &coarse_stats),
        ("snapshot", &snapshot, &snap_stats),
    ] {
        let _ = writeln!(
            json,
            "  \"{name}\": {{\"ingest_events_per_s\": {:.0}, \"queries_run\": {}, \
             \"query_p50_ms\": {:.3}, \"query_p99_ms\": {:.3}, \
             \"novelty_events\": {}, \"novelty_flushes\": {}, \"reader_stalls\": {}}},",
            o.ingest_events_per_s,
            o.queries_run,
            o.p50_ms,
            o.p99_ms,
            stats.novelty_events,
            stats.novelty_flushes,
            stats.reader_stalls
        );
    }
    let _ = writeln!(
        json,
        "  \"gates\": {{\"p99_speedup\": {p99_speedup:.2}, \"ingest_ratio\": {ingest_ratio:.2}, \"min_p99_speedup\": {min_p99_speedup}, \"min_ingest_ratio\": {min_ingest_ratio}, \"cores\": {cores}}}"
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR9.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
