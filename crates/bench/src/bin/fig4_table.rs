//! Regenerates Figure 4: log10-transformed execution time of the 19
//! demo-attack investigation queries, AIQL vs PostgreSQL-style baseline
//! (both with the optimized storage), plus the totals/speedup the paper
//! reports in §3 ("total 3.6 minutes … 21× speedup over PostgreSQL").
//!
//! ```sh
//! cargo run --release -p aiql-bench --bin fig4_table
//! AIQL_BENCH_EVENTS=50000 cargo run --release -p aiql-bench --bin fig4_table
//! ```

use aiql_baseline::RelationalEngine;
use aiql_bench::{assert_evidence, fig4_store, log10_secs, time_best_of};
use aiql_engine::{Engine, EngineConfig};
use aiql_sim::demo_queries;

fn main() {
    let store = fig4_store();
    let engine = Engine::new(EngineConfig::default());
    let postgres = RelationalEngine::new(true);
    println!("Figure 4 — AIQL vs PostgreSQL (both w/ optimized storage)");
    println!("dataset: {}", store.stats().summary());
    println!();
    println!(
        "{:<6} {:>12} {:>12} {:>9} {:>10} {:>10} {:>8}",
        "query", "aiql (ms)", "pg (ms)", "speedup", "log10(A)", "log10(P)", "rows"
    );

    let mut total_aiql = 0.0;
    let mut total_pg = 0.0;
    let mut me_aiql = 0.0; // multievent/dependency subtotal
    let mut me_pg = 0.0;
    for cq in demo_queries() {
        let table = engine.execute_text(&store, &cq.aiql).expect("aiql");
        assert_evidence(cq.id, &table);
        let rows = table.rows.len();
        let aiql_s = time_best_of(3, || engine.execute_text(&store, &cq.aiql).unwrap());
        let pg_s = time_best_of(3, || postgres.execute_text(&store, &cq.aiql).unwrap());
        total_aiql += aiql_s;
        total_pg += pg_s;
        let is_anomaly = matches!(
            aiql_lang::parse_query(&cq.aiql),
            Ok(aiql_lang::Query::Anomaly(_))
        );
        if !is_anomaly {
            me_aiql += aiql_s;
            me_pg += pg_s;
        }
        println!(
            "{:<6} {:>12.3} {:>12.3} {:>8.1}x {:>10.2} {:>10.2} {:>8}",
            cq.id,
            aiql_s * 1e3,
            pg_s * 1e3,
            pg_s / aiql_s.max(1e-9),
            log10_secs(aiql_s),
            log10_secs(pg_s),
            rows,
        );
    }
    println!();
    println!(
        "multievent subtotal: aiql {:.3}s | postgresql {:.3}s | speedup {:.1}x",
        me_aiql,
        me_pg,
        me_pg / me_aiql.max(1e-9)
    );
    println!(
        "total (incl. anomaly): aiql {:.3}s | postgresql {:.3}s | speedup {:.1}x",
        total_aiql,
        total_pg,
        total_pg / total_aiql.max(1e-9)
    );
    println!("paper: aiql 3.6 min | postgresql 77 min | speedup 21x (257M events, 85 GB)");
}
