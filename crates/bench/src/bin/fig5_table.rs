//! Regenerates Figure 5: log10-transformed execution time of the 26
//! case-study queries — AIQL vs PostgreSQL-style baseline *without* the
//! storage optimizations vs Neo4j-style graph baseline. The paper reports
//! 124× (vs PostgreSQL) and 157× (vs Neo4j) total speedups, with Neo4j
//! generally slower than PostgreSQL for multi-step behaviors.
//!
//! ```sh
//! cargo run --release -p aiql-bench --bin fig5_table
//! ```

use aiql_baseline::{GraphEngine, RelationalEngine};
use aiql_bench::{assert_evidence, fig5_store, log10_secs, time_best_of};
use aiql_engine::{Engine, EngineConfig};
use aiql_sim::case_study_queries;

fn main() {
    let store = fig5_store();
    let engine = Engine::new(EngineConfig::default());
    let postgres = RelationalEngine::new(false);
    let neo4j = GraphEngine::build(&store);
    println!("Figure 5 — AIQL vs PostgreSQL (w/o optimized storage) vs Neo4j");
    println!("dataset: {}", store.stats().summary());
    println!();
    println!(
        "{:<6} {:>11} {:>11} {:>11} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "query",
        "aiql (ms)",
        "pg (ms)",
        "neo4j(ms)",
        "pg/aiql",
        "neo/aiql",
        "log10(A)",
        "log10(P)",
        "log10(N)"
    );

    let (mut ta, mut tp, mut tn) = (0.0, 0.0, 0.0);
    for cq in case_study_queries() {
        let table = engine.execute_text(&store, &cq.aiql).expect("aiql");
        assert_evidence(cq.id, &table);
        let aiql_s = time_best_of(3, || engine.execute_text(&store, &cq.aiql).unwrap());
        let pg_s = time_best_of(2, || postgres.execute_text(&store, &cq.aiql).unwrap());
        let neo_s = time_best_of(2, || neo4j.execute_text(&store, &cq.aiql).unwrap());
        ta += aiql_s;
        tp += pg_s;
        tn += neo_s;
        println!(
            "{:<6} {:>11.3} {:>11.3} {:>11.3} {:>7.1}x {:>7.1}x {:>9.2} {:>9.2} {:>9.2}",
            cq.id,
            aiql_s * 1e3,
            pg_s * 1e3,
            neo_s * 1e3,
            pg_s / aiql_s.max(1e-9),
            neo_s / aiql_s.max(1e-9),
            log10_secs(aiql_s),
            log10_secs(pg_s),
            log10_secs(neo_s),
        );
    }
    println!();
    println!(
        "total: aiql {:.3}s | postgresql {:.3}s ({:.0}x) | neo4j {:.3}s ({:.0}x)",
        ta,
        tp,
        tp / ta.max(1e-9),
        tn,
        tn / ta.max(1e-9)
    );
    println!("paper: aiql 124x faster than PostgreSQL, 157x faster than Neo4j");
}
