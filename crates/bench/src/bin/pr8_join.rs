//! PR 8 perf trajectory: the temporal join's probe-reduction layers —
//! time-bucketed join indexes, key-partitioned probing, and sideways
//! filter pushdown — measured as a layer ablation on join-dominated
//! chains.
//!
//! Two query families run over the demo-attack scenario:
//!
//! * `chain4` — the unbounded 4-pattern chain from the PR 2/3/4 benches
//!   (end-to-end comparison point against `BENCH_PR4.json`);
//! * `exfil3` — a bounded 3-pattern exfiltration chain whose
//!   `before[30 min]` relations let the bucket grid skip whole posting
//!   ranges instead of filtering tuple-by-tuple.
//!
//! Each family runs under every single layer, no layers, and all layers,
//! with the join's operator counters (`probe_hits`, `bucket_skipped`,
//! `filter_pruned`) and build/probe split recorded per variant. The two
//! catalog guard queries (a5-5, a2-3) run under the full configuration so
//! selective investigations are pinned against regression.
//!
//! Emits `BENCH_PR8.json` (path via argv[1], default `BENCH_PR8.json`).
//! Pass `--check` for the single-iteration correctness mode used by CI:
//! every point of the layer cube (time-bucket × partitioned × sideways ×
//! serial/parallel) must return byte-identical tables, including under
//! truncating `max_intermediate` and under strict / partial-results
//! memory-governed execution.

use std::fmt::Write as _;

use aiql_bench::support::{catalog_query, demo_store, parse_args};
use aiql_bench::{bench_scale, push_host_meta, time_best_of};
use aiql_engine::{Engine, EngineConfig, EngineError, ExecBudget};
use aiql_storage::EventStore;

/// The unbounded join-dominated chain (same shape as the PR 2/3/4 chains,
/// so `BENCH_PR8.json` is directly comparable to `BENCH_PR4.json`).
const CHAIN_QUERY: &str = r#"proc p1 write file f as e1
proc p2 read file f as e2
proc p2 write file f2 as e3
proc p3 read file f2 as e4
with e1 before e2, e2 before e3, e3 before e4
return count(e4.amount)"#;

/// Bounded 3-pattern exfiltration chain: staging write, relay read, and
/// egress write tied together within 30-minute windows. The bounds make
/// every non-seed step a `Timed` index, so bucket pruning carries the run.
const EXFIL_QUERY: &str = r#"proc p1 write file f as e1
proc p2 read file f as e2
proc p2 write file f2 as e3
with e1 before[30 min] e2, e2 before[30 min] e3
return p1, p2, f2"#;

/// Engine with the three probe-reduction layers toggled independently
/// (everything else at the defaults, so the serial probe loop and the
/// auto-sized executor stay identical across variants).
fn layered(time_bucket: bool, partitioned: bool, sideways: bool) -> EngineConfig {
    EngineConfig {
        time_bucket_join: time_bucket,
        partitioned_probe: partitioned,
        sideways_filters: sideways,
        ..EngineConfig::default()
    }
}

/// Join-operator observables for one execution.
#[derive(Default, Clone, Copy)]
struct JoinObs {
    build_ms: f64,
    probe_ms: f64,
    probe_hits: u64,
    bucket_skipped: u64,
    filter_pruned: u64,
    buckets_max: u32,
}

fn join_obs(engine: &Engine, store: &EventStore, aiql: &str) -> JoinObs {
    let Ok(aiql_lang::Query::Multievent(m)) = aiql_lang::parse_query(aiql) else {
        return JoinObs::default();
    };
    let Ok((_, stats)) = engine.execute_multievent_with_stats(store, &m) else {
        return JoinObs::default();
    };
    let Some(join) = stats.ops.iter().find(|o| o.kind == "TemporalJoin") else {
        return JoinObs::default();
    };
    JoinObs {
        build_ms: join.build_nanos as f64 / 1e6,
        probe_ms: join.probe_nanos as f64 / 1e6,
        probe_hits: join.probe_hits,
        bucket_skipped: join.bucket_skipped,
        filter_pruned: join.filter_pruned,
        buckets_max: join.join_steps.iter().map(|s| s.buckets).max().unwrap_or(0),
    }
}

/// The CI layer cube: every combination of the three layers crossed with
/// the serial and frontier-partitioned drives must agree byte-for-byte
/// with the layers-off serial reference, including the truncated flag,
/// under full and truncating `max_intermediate`.
fn check_layer_cube(store: &EventStore, families: &[(&str, String)]) {
    let full_cap = EngineConfig::default().max_intermediate;
    for &max_intermediate in &[full_cap, 1, 7, 100] {
        for (name, aiql) in families {
            let reference = Engine::new(EngineConfig {
                parallel_join: false,
                max_intermediate,
                ..layered(false, false, false)
            });
            let want = reference.execute_text(store, aiql).expect("reference");
            if max_intermediate == full_cap {
                assert!(!want.rows.is_empty(), "{name}: query must find evidence");
            }
            for flags in 0u32..16 {
                let parallel = flags & 8 != 0;
                let engine = Engine::new(EngineConfig {
                    parallel_join: parallel,
                    parallelism: if parallel { 2 } else { 1 },
                    join_partitions: if parallel { 3 } else { 0 },
                    shared_scan_pool: false,
                    parallel_threshold: 0,
                    parallel_join_min_work: 0,
                    parallel_index_min_build: 0,
                    max_intermediate,
                    ..layered(flags & 1 != 0, flags & 2 != 0, flags & 4 != 0)
                });
                let got = engine.execute_text(store, aiql).expect("variant");
                assert_eq!(
                    (&want.rows, want.truncated),
                    (&got.rows, got.truncated),
                    "{name}: layer cube point {flags:04b} (max_intermediate {max_intermediate}) diverged"
                );
            }
        }
    }
}

/// The CI governed sweep (non-aggregated family only, so the row-prefix
/// contract applies): under a strict memory budget every cube point either
/// completes byte-identically or trips with the exact budget error; in
/// partial-results mode it returns a row-prefix of its own full result.
fn check_governed(store: &EventStore, aiql: &str) {
    for &budget_bytes in &[4 << 10u64, 64 << 10, 1 << 20] {
        for flags in 0u32..8 {
            let engine = Engine::new(EngineConfig {
                parallel_join: false,
                ..layered(flags & 1 != 0, flags & 2 != 0, flags & 4 != 0)
            });
            let full = engine.execute_text(store, aiql).expect("ungoverned");
            let strict = ExecBudget::unlimited().with_memory_bytes(budget_bytes);
            match engine.execute_text_with_budget(store, aiql, &strict) {
                Ok(t) => assert_eq!(t.rows, full.rows, "strict governed run diverged"),
                Err(e) => assert_eq!(e, EngineError::MemoryBudget { budget_bytes }),
            }
            let partial = ExecBudget::unlimited()
                .with_memory_bytes(budget_bytes)
                .with_partial_results(true);
            let p = engine
                .execute_text_with_budget(store, aiql, &partial)
                .expect("partial mode never errors on a memory trip");
            assert!(
                p.rows.len() <= full.rows.len() && p.rows[..] == full.rows[..p.rows.len()],
                "layer point {flags:03b} budget {budget_bytes}: partial rows not a prefix"
            );
        }
    }
}

fn main() {
    let args = parse_args("BENCH_PR8.json");
    let (check_mode, out_path) = (args.check, args.out_path);
    let reps: usize = if check_mode {
        1
    } else {
        std::env::var("AIQL_BENCH_REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5)
    };

    let store: EventStore = demo_store();
    let total_events = store.stats().events;

    let families: Vec<(&str, String)> = vec![
        ("chain4/4pattern-unbounded", CHAIN_QUERY.to_string()),
        ("exfil3/3pattern-bounded-30min", EXFIL_QUERY.to_string()),
    ];

    check_layer_cube(&store, &families);
    if check_mode {
        check_governed(&store, EXFIL_QUERY);
        println!(
            "pr8_join --check OK: 16-point layer cube × 4 truncation levels byte-identical \
             on {} families; strict + partial-results memory governance honoured the \
             prefix contract at every layer point",
            families.len()
        );
        return;
    }

    // Ablation: one layer at a time, none, and all. Fresh engine per
    // variant so plan caches never leak across configurations.
    let variants: [(&str, bool, bool, bool); 5] = [
        ("all-off", false, false, false),
        ("time-bucket", true, false, false),
        ("partitioned", false, true, false),
        ("sideways", false, false, true),
        ("all-on", true, true, true),
    ];
    struct Row {
        family: &'static str,
        variant: &'static str,
        total_ms: f64,
        obs: JoinObs,
        rows: usize,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (family, aiql) in &families {
        for &(variant, tb, pp, sw) in &variants {
            let engine = Engine::new(layered(tb, pp, sw));
            let nrows = engine.execute_text(&store, aiql).expect("q").len();
            let secs = time_best_of(reps, || engine.execute_text(&store, aiql).expect("q").len());
            let obs = join_obs(&engine, &store, aiql);
            eprintln!(
                "{family} [{variant}]: {:.3} ms total, build {:.3} ms, probe {:.3} ms, \
                 {} hits, {} bucket-skips, {} filter-pruned, {nrows} row(s)",
                secs * 1e3,
                obs.build_ms,
                obs.probe_ms,
                obs.probe_hits,
                obs.bucket_skipped,
                obs.filter_pruned,
            );
            rows.push(Row {
                family,
                variant,
                total_ms: secs * 1e3,
                obs,
                rows: nrows,
            });
        }
    }

    // Catalog guards under the full configuration: the selective
    // investigations must stay flat while the chains get faster.
    let guard_engine = Engine::new(EngineConfig::default());
    let mut guards: Vec<(&str, f64)> = Vec::new();
    for id in ["a5-5", "a2-3"] {
        let aiql = catalog_query(id);
        let n = guard_engine
            .execute_text(&store, &aiql)
            .expect("guard")
            .len();
        assert!(n > 0, "catalog guard {id} must find evidence");
        let secs = time_best_of(reps, || {
            guard_engine
                .execute_text(&store, &aiql)
                .expect("guard")
                .len()
        });
        eprintln!("catalog guard {id}: {:.3} ms", secs * 1e3);
        guards.push((id, secs * 1e3));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 8,");
    let _ = writeln!(
        json,
        "  \"title\": \"temporal-join probe reduction: time-bucket / partitioned / sideways layer ablation\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"scenario\": \"demo attack (fig4)\", \"hosts\": {}, \"events\": {total_events}}},",
        bench_scale().hosts,
    );
    push_host_meta(&mut json, EngineConfig::default().parallelism);
    let _ = writeln!(json, "  \"reps_best_of\": {reps},");
    let _ = writeln!(
        json,
        "  \"note\": \"every layer combination asserted byte-identical (incl. truncating max_intermediate) before timing; join counters from EXPLAIN ANALYZE stats\","
    );
    json.push_str("  \"catalog_guards\": {");
    for (i, (id, ms)) in guards.iter().enumerate() {
        let _ = write!(
            json,
            "{}\"{id}_ms\": {ms:.3}",
            if i > 0 { ", " } else { "" }
        );
    }
    json.push_str("},\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let baseline = rows
            .iter()
            .find(|b| b.family == r.family && b.variant == "all-off")
            .map(|b| b.total_ms)
            .unwrap_or(r.total_ms);
        let _ = write!(
            json,
            "    {{\"family\": \"{}\", \"variant\": \"{}\", \"total_ms\": {:.3}, \"speedup_vs_all_off\": {:.2}, \"join_build_ms\": {:.3}, \"join_probe_ms\": {:.3}, \"probe_hits\": {}, \"bucket_skipped\": {}, \"filter_pruned\": {}, \"buckets_max\": {}, \"result_rows\": {}}}",
            r.family,
            r.variant,
            r.total_ms,
            baseline / r.total_ms.max(1e-9),
            r.obs.build_ms,
            r.obs.probe_ms,
            r.obs.probe_hits,
            r.obs.bucket_skipped,
            r.obs.filter_pruned,
            r.obs.buckets_max,
            r.rows,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR8.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
