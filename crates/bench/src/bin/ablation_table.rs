//! Prints the design-choice ablation summary as a table (the criterion
//! bench `ablation` measures the same comparisons with statistics; this
//! binary gives the quick overview used in EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p aiql-bench --bin ablation_table
//! ```

use aiql_bench::{fig4_store, time_best_of};
use aiql_engine::{Engine, EngineConfig};
use aiql_sim::demo_queries;
use aiql_storage::{EventStore, StoreConfig};

fn main() {
    let store = fig4_store();
    println!("Engine ablations over the full demo catalog (18 multievent queries)");
    println!("dataset: {}", store.stats().summary());
    println!();

    // The anomaly query's windowing cost is identical across engine
    // configurations; exclude it so the scheduling effects are visible.
    let catalog: Vec<String> = demo_queries()
        .into_iter()
        .filter(|q| q.id != "a5-1")
        .map(|q| q.aiql)
        .collect();

    let variants: Vec<(&str, EngineConfig)> = vec![
        ("full optimizations", EngineConfig::default()),
        (
            "- pruning priority",
            EngineConfig {
                prioritize_pruning: false,
                ..EngineConfig::default()
            },
        ),
        (
            "- partition parallel",
            EngineConfig {
                partition_parallel: false,
                ..EngineConfig::default()
            },
        ),
        (
            "- entity pushdown",
            EngineConfig {
                entity_pushdown: false,
                ..EngineConfig::default()
            },
        ),
        (
            "- semi-join pushdown",
            EngineConfig {
                semi_join_pushdown: false,
                ..EngineConfig::default()
            },
        ),
        (
            "- temporal narrowing",
            EngineConfig {
                temporal_narrowing: false,
                ..EngineConfig::default()
            },
        ),
        ("all off", EngineConfig::unoptimized()),
    ];

    let run_catalog = |engine: &Engine| {
        for src in &catalog {
            engine.execute_text(&store, src).expect("catalog query");
        }
    };
    // Warm caches, then measure every variant; ratios are against the
    // fully optimized configuration (the first variant).
    run_catalog(&Engine::new(EngineConfig::default()));
    let timings: Vec<(&str, f64)> = variants
        .into_iter()
        .map(|(name, config)| {
            let engine = Engine::new(config);
            run_catalog(&engine); // per-variant warm-up
            (name, time_best_of(3, || run_catalog(&engine)))
        })
        .collect();
    let full = timings[0].1;
    println!(
        "{:<24} {:>12} {:>10}",
        "configuration", "time (ms)", "vs full"
    );
    for (name, secs) in timings {
        println!(
            "{:<24} {:>12.3} {:>9.2}x",
            name,
            secs * 1e3,
            secs / full.max(1e-9)
        );
    }

    // Storage-side: dedup and batch size on ingest; index vs full scan.
    println!();
    println!("Storage ablations (ingest of the demo scenario)");
    let scenario = aiql_sim::scenario_demo(aiql_sim::Scale {
        hosts: 4,
        events_per_host: 10_000,
        seed: 1,
    });
    for (name, dedup) in [("dedup on", true), ("dedup off", false)] {
        let secs = time_best_of(3, || {
            let mut s = EventStore::new(StoreConfig {
                dedup,
                ..StoreConfig::default()
            });
            s.ingest_all(&scenario.raws);
            s.event_count()
        });
        println!("{:<24} {:>12.1} ms", name, secs * 1e3);
    }
    for batch in [64usize, 8192] {
        let secs = time_best_of(3, || {
            let mut s = EventStore::new(StoreConfig {
                batch_size: batch,
                ..StoreConfig::default()
            });
            s.ingest_all(&scenario.raws);
            s.event_count()
        });
        println!(
            "{:<24} {:>12.1} ms",
            format!("batch size {batch}"),
            secs * 1e3
        );
    }

    let mut store2 = EventStore::default();
    store2.ingest_all(&scenario.raws);
    let filter = aiql_storage::EventFilter::all()
        .with_ops(aiql_storage::OpSet::single(aiql_model::Operation::Execute));
    let indexed = time_best_of(5, || store2.scan_collect(&filter).len());
    let full_scan = time_best_of(5, || store2.scan_unoptimized_collect(&filter).len());
    println!(
        "{:<24} {:>12.3} ms\n{:<24} {:>12.3} ms ({:.0}x slower)",
        "selective scan (indexed)",
        indexed * 1e3,
        "selective scan (full)",
        full_scan * 1e3,
        full_scan / indexed.max(1e-9)
    );
}
