//! Regenerates the §3 conciseness comparison: "SQL queries contain at
//! least 3.0× more constraints, 3.5× more words, and 5.2× more characters
//! (excluding spaces) than AIQL queries." Also reports the Cypher ratios
//! for the Figure 5 discussion.
//!
//! ```sh
//! cargo run --release -p aiql-bench --bin conciseness
//! ```

use aiql_lang::metrics::QueryMetrics;
use aiql_lang::{cypher, parse_query, sql};
use aiql_sim::{case_study_queries, demo_queries, CatalogQuery};

fn report(title: &str, catalog: &[CatalogQuery]) -> (f64, f64, f64) {
    println!("== {title} ==");
    println!(
        "{:<6} {:>6} {:>6} {:>6}   {:>6} {:>6} {:>6}   {:>7} {:>7} {:>7}",
        "query",
        "a.cons",
        "a.word",
        "a.char",
        "s.cons",
        "s.word",
        "s.char",
        "r.cons",
        "r.word",
        "r.char"
    );
    let (mut sum_c, mut sum_w, mut sum_ch) = (0.0, 0.0, 0.0);
    let mut min_c = f64::MAX;
    for cq in catalog {
        let parsed = parse_query(&cq.aiql).expect("catalog query parses");
        let aiql_m = QueryMetrics::measure(&cq.aiql);
        let sql_m = QueryMetrics::measure(&sql::to_sql(&parsed));
        let (rc, rw, rch) = sql_m.ratio_over(&aiql_m);
        sum_c += rc;
        sum_w += rw;
        sum_ch += rch;
        min_c = min_c.min(rc);
        println!(
            "{:<6} {:>6} {:>6} {:>6}   {:>6} {:>6} {:>6}   {:>6.1}x {:>6.1}x {:>6.1}x",
            cq.id,
            aiql_m.constraints,
            aiql_m.words,
            aiql_m.chars,
            sql_m.constraints,
            sql_m.words,
            sql_m.chars,
            rc,
            rw,
            rch,
        );
    }
    let n = catalog.len() as f64;
    println!(
        "mean SQL/AIQL ratios: constraints {:.1}x | words {:.1}x | chars {:.1}x (min constraint ratio {:.1}x)",
        sum_c / n,
        sum_w / n,
        sum_ch / n,
        min_c
    );
    println!();
    (sum_c / n, sum_w / n, sum_ch / n)
}

fn cypher_summary(catalog: &[CatalogQuery]) {
    let (mut sum_c, mut sum_w, mut sum_ch) = (0.0, 0.0, 0.0);
    for cq in catalog {
        let parsed = parse_query(&cq.aiql).expect("parses");
        let aiql_m = QueryMetrics::measure(&cq.aiql);
        let cy_m = QueryMetrics::measure(&cypher::to_cypher(&parsed));
        let (rc, rw, rch) = cy_m.ratio_over(&aiql_m);
        sum_c += rc;
        sum_w += rw;
        sum_ch += rch;
    }
    let n = catalog.len() as f64;
    println!(
        "mean Cypher/AIQL ratios: constraints {:.1}x | words {:.1}x | chars {:.1}x",
        sum_c / n,
        sum_w / n,
        sum_ch / n
    );
}

fn main() {
    println!("Conciseness — AIQL vs generated SQL (per query)");
    println!();
    let demo = demo_queries();
    let case = case_study_queries();
    let (c1, w1, ch1) = report("Figure 4 catalog (demo attack)", &demo);
    let (c2, w2, ch2) = report("Figure 5 catalog (case study)", &case);
    println!(
        "overall mean SQL/AIQL: constraints {:.1}x | words {:.1}x | chars {:.1}x",
        (c1 + c2) / 2.0,
        (w1 + w2) / 2.0,
        (ch1 + ch2) / 2.0
    );
    println!("paper: SQL has >= 3.0x constraints, 3.5x words, 5.2x chars");
    println!();
    let all: Vec<CatalogQuery> = demo.into_iter().chain(case).collect();
    cypher_summary(&all);
}
