//! PR 7 robustness trajectory: the multi-tenant query service under
//! concurrent load.
//!
//! Many analyst sessions submit a Zipf-skewed mix of the Figure-4
//! investigation catalog in bursts against a deliberately small service:
//! bounded per-session queues (overflow **sheds** with a `retry_after_ms`
//! hint) and a memory pool that fits one full grant plus floor grants
//! (overlap **degrades** queries to `partial_results` instead of failing).
//! The numbers that justify the layer:
//!
//! * admitted / shed / degraded counts — overload is handled *explicitly*,
//!   never by unbounded queueing or tenant-visible crashes;
//! * p50/p99 client latency (queue wait + execution) under the burst;
//! * tenant isolation — every undegraded response is byte-identical to a
//!   serial single-tenant reference run of the same query.
//!
//! Emits `BENCH_PR7.json` (path via argv[1], default `BENCH_PR7.json`).
//! Pass `--check` for CI's smoke mode: smaller fleet, same gates.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use aiql_bench::push_host_meta;
use aiql_bench::support::{demo_store, parse_args, percentile, zipf_assignments};
use aiql_engine::{Engine, EngineConfig, QueryService, ResultTable, ServiceConfig, ServiceError};
use aiql_sim::demo_queries;
use aiql_storage::SharedStore;

struct ClientOutcome {
    latencies_ms: Vec<f64>,
    shed: u64,
    degraded: u64,
    /// (query index, degraded) for every completed response that must be
    /// checked against the reference.
    completed: Vec<(usize, bool, ResultTable)>,
}

fn main() {
    let args = parse_args("BENCH_PR7.json");
    let (check_mode, out_path) = (args.check, args.out_path);
    let (n_sessions, per_session) = if check_mode { (24, 8) } else { (64, 10) };

    let shared = SharedStore::new(demo_store());
    let events = shared.read(|s| s.stats().events);

    // Serial single-tenant reference: what every undegraded multi-tenant
    // response must reproduce byte for byte.
    let catalog = demo_queries();
    let reference: Vec<ResultTable> = {
        let engine = Engine::new(EngineConfig::default());
        catalog
            .iter()
            .map(|q| {
                let t = shared
                    .read(|s| engine.execute_text(s, &q.aiql))
                    .unwrap_or_else(|e| panic!("reference run failed on {}: {e}", q.id));
                assert!(!t.rows.is_empty(), "{}: query must find evidence", q.id);
                t
            })
            .collect()
    };

    // A service small enough that the burst exercises every overload path:
    // queues overflow (shed) and memory grants overlap (degrade).
    let service = Arc::new(QueryService::new(
        shared,
        ServiceConfig {
            dispatchers: 4,
            session_queue_cap: 2,
            total_memory_bytes: 80 << 20,
            per_query_memory_bytes: 64 << 20,
            min_grant_bytes: 4 << 20,
            ..ServiceConfig::default()
        },
    ));

    // Zipf-skewed query assignment, drawn up-front from a fixed seed.
    let assignments = zipf_assignments(n_sessions, per_session, catalog.len(), 0x7EAA_5EED);

    let bench_started = Instant::now();
    let handles: Vec<std::thread::JoinHandle<ClientOutcome>> = assignments
        .into_iter()
        .map(|qs| {
            let service = service.clone();
            let texts: Vec<String> = qs.iter().map(|&i| catalog[i].aiql.clone()).collect();
            std::thread::spawn(move || {
                let sid = service.create_session().expect("session");
                // Burst: submit everything, then wait — queue overflow is
                // the point, and a shed request is simply dropped (the
                // retry path is covered by the service test suite).
                let mut tickets = Vec::new();
                let mut shed = 0u64;
                for (&qi, text) in qs.iter().zip(&texts) {
                    match service.submit(sid, text) {
                        Ok(ticket) => tickets.push((qi, Instant::now(), ticket)),
                        Err(ServiceError::Overloaded { retry_after_ms }) => {
                            assert!(retry_after_ms > 0, "shed without a retry hint");
                            shed += 1;
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                let mut out = ClientOutcome {
                    latencies_ms: Vec::new(),
                    shed,
                    degraded: 0,
                    completed: Vec::new(),
                };
                for (qi, submitted, ticket) in tickets {
                    let resp = ticket.wait().unwrap_or_else(|e| {
                        panic!(
                            "admitted query failed ({}) under pure overload: {e}",
                            catalog_id(qi)
                        )
                    });
                    out.latencies_ms
                        .push(submitted.elapsed().as_secs_f64() * 1e3);
                    if resp.degraded {
                        out.degraded += 1;
                    }
                    out.completed.push((qi, resp.degraded, resp.table));
                }
                service.close_session(sid);
                out
            })
        })
        .collect();
    let outcomes: Vec<ClientOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall_s = bench_started.elapsed().as_secs_f64();

    // Gates.
    let mut latencies: Vec<f64> = Vec::new();
    let mut client_shed = 0u64;
    let mut client_degraded = 0u64;
    for o in &outcomes {
        latencies.extend_from_slice(&o.latencies_ms);
        client_shed += o.shed;
        client_degraded += o.degraded;
        for (qi, degraded, table) in &o.completed {
            if *degraded {
                // Degraded queries run in partial mode: a trip truncates
                // with a warning; no trip must still be the exact answer.
                if table.truncated {
                    assert!(
                        !table.warnings.is_empty(),
                        "{}: truncated without a warning",
                        catalog_id(*qi)
                    );
                } else {
                    assert_eq!(
                        table.rows,
                        reference[*qi].rows,
                        "{}: untripped degraded run diverged",
                        catalog_id(*qi)
                    );
                }
            } else {
                assert_eq!(
                    (&table.rows, table.truncated),
                    (&reference[*qi].rows, false),
                    "{}: undegraded response diverged from the serial reference",
                    catalog_id(*qi)
                );
            }
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    let stats = service.stats();
    let submitted = (n_sessions * per_session) as u64;
    assert_eq!(stats.submitted, submitted);
    assert_eq!(
        stats.shed, client_shed,
        "shed counter diverged from clients"
    );
    assert_eq!(stats.admitted, submitted - client_shed);
    assert_eq!(stats.degraded, client_degraded);
    assert_eq!(stats.failed, 0, "pure overload must not fail any query");
    assert_eq!(stats.cancelled, 0);
    assert_eq!(
        stats.completed, stats.admitted,
        "every admitted query answers"
    );
    assert!(
        stats.shed > 0,
        "the burst never overflowed a 2-deep session queue: shedding untested"
    );
    assert!(
        stats.degraded > 0,
        "concurrent grants never overlapped the memory pool: degradation untested"
    );
    service.shutdown();

    eprintln!(
        "{} sessions × {} queries: admitted {}, shed {}, degraded {}, \
         p50 {:.2} ms, p99 {:.2} ms, wall {:.2} s",
        n_sessions, per_session, stats.admitted, stats.shed, stats.degraded, p50, p99, wall_s
    );

    if check_mode {
        println!(
            "pr7_service --check OK: {} admitted ({} shed with hints, {} degraded), \
             undegraded results byte-identical to the serial reference, \
             p50 {p50:.2} ms / p99 {p99:.2} ms",
            stats.admitted, stats.shed, stats.degraded
        );
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 7,");
    let _ = writeln!(
        json,
        "  \"title\": \"multi-tenant service: admission, shedding, degradation under a session burst\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"events\": {events}, \"sessions\": {n_sessions}, \"queries_per_session\": {per_session}}},"
    );
    push_host_meta(&mut json, EngineConfig::default().parallelism);
    let _ = writeln!(json, "  \"wall_s\": {wall_s:.3},");
    let _ = writeln!(
        json,
        "  \"counts\": {{\"submitted\": {}, \"admitted\": {}, \"shed\": {}, \"degraded\": {}, \"completed\": {}}},",
        stats.submitted, stats.admitted, stats.shed, stats.degraded, stats.completed
    );
    let _ = writeln!(
        json,
        "  \"latency_ms\": {{\"p50\": {p50:.3}, \"p99\": {p99:.3}}}"
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR7.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}

fn catalog_id(qi: usize) -> &'static str {
    demo_queries()[qi].id
}
