//! Shared helpers for the AIQL benchmark harness.
//!
//! The benches regenerate every table and figure of the paper's evaluation:
//!
//! * `benches/fig4.rs` + `bin/fig4_table.rs` — Figure 4: per-query
//!   execution time of the 19 demo-attack investigation queries, AIQL vs
//!   PostgreSQL-style baseline (both on the optimized storage);
//! * `benches/fig5.rs` + `bin/fig5_table.rs` — Figure 5: the 26 case-study
//!   queries, AIQL vs PostgreSQL-style baseline *without* the storage
//!   optimizations vs Neo4j-style graph baseline;
//! * `bin/conciseness.rs` — the §3 conciseness comparison (constraints,
//!   words, characters of AIQL vs generated SQL/Cypher);
//! * `benches/ablation.rs` — contribution of each design choice (pruning
//!   scheduling, partition parallelism, semi-join pushdown, temporal
//!   narrowing, dedup, batch size, indexes);
//! * `benches/micro.rs` — substrate microbenchmarks (parser, pattern
//!   matcher, scans, WAL, snapshots).

pub mod support;

use std::time::Instant;

use aiql_engine::ResultTable;
use aiql_sim::{build_store, scenario_case_study, scenario_demo, Scale};
use aiql_storage::{EventStore, StoreConfig};

/// Dataset scale used by the criterion benches (kept moderate so a full
/// `cargo bench --workspace` finishes in minutes; the table binaries accept
/// `AIQL_BENCH_EVENTS` to scale up).
pub fn bench_scale() -> Scale {
    let events_per_host = std::env::var("AIQL_BENCH_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    Scale {
        hosts: 8,
        events_per_host,
        seed: 0xA1_91,
    }
}

/// Builds the Figure 4 dataset (demo attack).
pub fn fig4_store() -> EventStore {
    build_store(&scenario_demo(bench_scale()), StoreConfig::default())
}

/// Builds the Figure 5 dataset (case study). Slightly smaller by default
/// because the unoptimized baselines are two orders of magnitude slower.
pub fn fig5_store() -> EventStore {
    let mut scale = bench_scale();
    scale.events_per_host = (scale.events_per_host / 2).max(1);
    build_store(&scenario_case_study(scale), StoreConfig::default())
}

/// Times one closure invocation in seconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Best-of-`n` wall time in seconds (first run warms caches).
pub fn time_best_of<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..n.max(1) {
        let (_, secs) = time_once(&mut f);
        best = best.min(secs);
    }
    best
}

/// log10 with a floor so sub-microsecond timings stay plottable (the paper
/// plots log10 of milliseconds-to-seconds timings).
pub fn log10_secs(secs: f64) -> f64 {
    secs.max(1e-7).log10()
}

/// Appends the host-provenance fields every bench JSON carries: the
/// machine's core count and the effective executor thread count
/// (`EngineConfig::parallelism` defaults to the host size, so speedup
/// numbers are only interpretable with both recorded).
pub fn push_host_meta(json: &mut String, executor_threads: usize) {
    use std::fmt::Write;
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"executor_threads\": {executor_threads},");
}

/// Sanity guard used by the table binaries: results must be non-empty.
pub fn assert_evidence(id: &str, table: &ResultTable) {
    assert!(
        !table.rows.is_empty(),
        "query {id} found no evidence — dataset/catalog drifted"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse_env() {
        let s = bench_scale();
        assert!(s.hosts >= 4);
        assert!(s.events_per_host > 0);
    }

    #[test]
    fn timing_helpers_work() {
        let (v, secs) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
        assert!(time_best_of(3, || ()) < 1.0);
        assert!(log10_secs(1.0).abs() < 1e-9);
        assert!(log10_secs(0.0) < -6.0);
    }
}
