//! Shared demo-attack workload setup for the PR trajectory benches.
//!
//! Every `pr*_*` binary runs the same Figure-4 demo-attack scenario at
//! [`bench_scale`], parses the same `--check` / output-path argument
//! convention, draws Zipf-skewed query mixes from the investigation
//! catalog, and summarizes latencies as percentiles. This module is that
//! shared setup, so the bins only contain what they actually measure.

use aiql_sim::{build_store, demo_queries, scenario_demo, zipf::Zipf, Scenario};
use aiql_storage::{EventStore, StoreConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bench_scale;

/// The trajectory-bench argument convention: `--check` selects CI's
/// single-iteration correctness mode (no JSON emitted), anything else is
/// the output path (defaulting per bin).
pub struct BenchArgs {
    pub check: bool,
    pub out_path: String,
}

/// Parses `argv[1]` under the convention above.
pub fn parse_args(default_out: &str) -> BenchArgs {
    let arg = std::env::args().nth(1);
    let check = arg.as_deref() == Some("--check");
    BenchArgs {
        check,
        out_path: if check {
            String::new()
        } else {
            arg.unwrap_or_else(|| default_out.to_string())
        },
    }
}

/// The demo-attack scenario at [`bench_scale`] (raw events included, for
/// bins that stream or split the ingest themselves).
pub fn demo_scenario() -> Scenario {
    scenario_demo(bench_scale())
}

/// Builds the demo-attack store, logging the raw-event count (every bin
/// prints this while the store builds).
pub fn demo_store() -> EventStore {
    let scenario = demo_scenario();
    eprintln!("building store ({} raw events)...", scenario.raws.len());
    build_store(&scenario, StoreConfig::default())
}

/// Looks up one Figure-4 investigation query by catalog id.
pub fn catalog_query(id: &str) -> String {
    demo_queries()
        .into_iter()
        .find(|q| q.id == id)
        .unwrap_or_else(|| panic!("catalog query {id} exists"))
        .aiql
}

/// Nearest-rank percentile over an ascending latency list (ms).
pub fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// Zipf-skewed query assignments: `lists` client sessions, `per_list`
/// draws each, over `n_items` catalog entries — drawn up front from a
/// fixed seed so every run (and both sides of a differential) replays the
/// identical mix.
pub fn zipf_assignments(
    lists: usize,
    per_list: usize,
    n_items: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    let zipf = Zipf::new(n_items, 1.2);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..lists)
        .map(|_| (0..per_list).map(|_| zipf.sample(&mut rng)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let ms = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&ms, 0.0), 1.0);
        assert_eq!(percentile(&ms, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn zipf_assignments_are_deterministic() {
        let a = zipf_assignments(3, 5, 7, 42);
        let b = zipf_assignments(3, 5, 7, 42);
        assert_eq!(a, b);
        assert!(a.iter().flatten().all(|&i| i < 7));
    }
}
