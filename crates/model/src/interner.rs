//! String interning.
//!
//! System monitoring data is massively repetitive: the same executable
//! names, file paths, and user names appear millions of times. The paper's
//! storage layer deduplicates this data; we do it at the lowest level by
//! interning every string into a dictionary and carrying 4-byte [`Symbol`]s
//! everywhere. Equality tests on attributes become integer compares, and
//! `LIKE` patterns can be evaluated once against the (small) dictionary
//! instead of per-event (see `aiql-storage`).

use std::collections::HashMap;
use std::fmt;

/// Handle to an interned string. Cheap to copy, hash, and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw dictionary index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An append-only string dictionary.
///
/// Interning is idempotent: the same string always maps to the same symbol.
/// The empty string is pre-interned as symbol 0 so that "absent" attributes
/// have a canonical cheap representation.
#[derive(Debug, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    lookup: HashMap<Box<str>, Symbol>,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

impl Interner {
    /// The symbol of the pre-interned empty string.
    pub const EMPTY: Symbol = Symbol(0);

    /// Creates a dictionary containing only the empty string.
    pub fn new() -> Self {
        let mut i = Interner {
            strings: Vec::new(),
            lookup: HashMap::new(),
        };
        i.intern("");
        i
    }

    /// Interns `s`, returning its stable symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol was not produced by this interner.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct strings in the dictionary (including `""`).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the dictionary holds only the pre-interned empty string.
    pub fn is_empty(&self) -> bool {
        self.strings.len() <= 1
    }

    /// Iterates over `(symbol, string)` pairs in insertion order.
    ///
    /// This is the scan used to pre-evaluate `LIKE` patterns against the
    /// dictionary: the dictionary is orders of magnitude smaller than the
    /// event table.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }

    /// Approximate heap footprint in bytes (dictionary side only), used by
    /// storage statistics.
    pub fn heap_bytes(&self) -> usize {
        self.strings.iter().map(|s| s.len()).sum::<usize>() * 2
            + self.strings.len() * std::mem::size_of::<Box<str>>() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("cmd.exe");
        let b = i.intern("cmd.exe");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "cmd.exe");
    }

    #[test]
    fn empty_string_is_symbol_zero() {
        let mut i = Interner::new();
        assert_eq!(i.intern(""), Interner::EMPTY);
        assert_eq!(i.resolve(Interner::EMPTY), "");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.len(), 3); // "", "a", "b"
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let all: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(all, vec!["", "x", "y"]);
    }
}
