//! Timestamps, durations, and time windows.
//!
//! Every system event occurs at a particular time; the engine exploits this
//! temporal dimension both for filtering (the `(at "mm/dd/yyyy")` global
//! constraint) and for partitioned parallel execution. We use microseconds
//! since the Unix epoch, which comfortably covers the 0.5–1 year retention
//! the paper assumes while keeping arithmetic cheap.

use std::fmt;
use std::ops::{Add, Sub};

use crate::error::ModelError;

/// Microseconds in one second.
pub const MICROS_PER_SEC: i64 = 1_000_000;
/// Microseconds in one minute.
pub const MICROS_PER_MIN: i64 = 60 * MICROS_PER_SEC;
/// Microseconds in one hour.
pub const MICROS_PER_HOUR: i64 = 60 * MICROS_PER_MIN;
/// Microseconds in one day.
pub const MICROS_PER_DAY: i64 = 24 * MICROS_PER_HOUR;

/// A point in time: microseconds since the Unix epoch (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// A span of time in microseconds. Used for window sizes, steps, and the
/// optional bound on temporal relationships (`evt1 before[5 min] evt2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub i64);

/// A half-open time interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeWindow {
    /// Inclusive start of the window.
    pub start: Timestamp,
    /// Exclusive end of the window.
    pub end: Timestamp,
}

impl Timestamp {
    /// The earliest representable instant.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The latest representable instant.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Builds a timestamp from whole seconds since the epoch.
    #[inline]
    pub fn from_secs(secs: i64) -> Self {
        Timestamp(secs * MICROS_PER_SEC)
    }

    /// Builds a timestamp from microseconds since the epoch.
    #[inline]
    pub fn from_micros(micros: i64) -> Self {
        Timestamp(micros)
    }

    /// Microseconds since the epoch.
    #[inline]
    pub fn micros(self) -> i64 {
        self.0
    }

    /// Midnight UTC at the start of the given civil date.
    ///
    /// Uses the classic days-from-civil algorithm (Howard Hinnant), valid for
    /// all dates in the proleptic Gregorian calendar.
    pub fn from_date(year: i32, month: u32, day: u32) -> Self {
        let days = days_from_civil(year, month, day);
        Timestamp(days * MICROS_PER_DAY)
    }

    /// Decomposes this timestamp into `(year, month, day)` in UTC.
    pub fn to_date(self) -> (i32, u32, u32) {
        civil_from_days(self.0.div_euclid(MICROS_PER_DAY))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration.
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from microseconds.
    #[inline]
    pub fn from_micros(micros: i64) -> Self {
        Duration(micros)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: i64) -> Self {
        Duration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    #[inline]
    pub fn from_secs(secs: i64) -> Self {
        Duration(secs * MICROS_PER_SEC)
    }

    /// Builds a duration from whole minutes.
    #[inline]
    pub fn from_mins(mins: i64) -> Self {
        Duration(mins * MICROS_PER_MIN)
    }

    /// Builds a duration from whole hours.
    #[inline]
    pub fn from_hours(hours: i64) -> Self {
        Duration(hours * MICROS_PER_HOUR)
    }

    /// Builds a duration from whole days.
    #[inline]
    pub fn from_days(days: i64) -> Self {
        Duration(days * MICROS_PER_DAY)
    }

    /// The duration in microseconds.
    #[inline]
    pub fn micros(self) -> i64 {
        self.0
    }

    /// Whether this duration is strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }
}

impl TimeWindow {
    /// The unbounded window covering all representable time.
    pub const ALL: TimeWindow = TimeWindow {
        start: Timestamp::MIN,
        end: Timestamp::MAX,
    };

    /// Builds a window `[start, end)`; callers must ensure `start <= end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        TimeWindow { start, end }
    }

    /// The 24-hour window covering one civil day (the `(at "mm/dd/yyyy")`
    /// global constraint of an AIQL query).
    pub fn day(year: i32, month: u32, day: u32) -> Self {
        let start = Timestamp::from_date(year, month, day);
        TimeWindow {
            start,
            end: start + Duration::from_days(1),
        }
    }

    /// Parses the argument of an `at` constraint: `"mm/dd/yyyy"`.
    pub fn parse_day(text: &str) -> Result<Self, ModelError> {
        let parts: Vec<&str> = text.split('/').collect();
        if parts.len() != 3 {
            return Err(ModelError::BadDate(text.to_string()));
        }
        let month: u32 = parts[0]
            .parse()
            .map_err(|_| ModelError::BadDate(text.to_string()))?;
        let day: u32 = parts[1]
            .parse()
            .map_err(|_| ModelError::BadDate(text.to_string()))?;
        let year: i32 = parts[2]
            .parse()
            .map_err(|_| ModelError::BadDate(text.to_string()))?;
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(ModelError::BadDate(text.to_string()));
        }
        Ok(TimeWindow::day(year, month, day))
    }

    /// Whether `t` falls inside `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Intersection of two windows; empty result collapses to a zero-length
    /// window at the later start.
    pub fn intersect(&self, other: &TimeWindow) -> TimeWindow {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        TimeWindow {
            start,
            end: end.max(start),
        }
    }

    /// Whether the window contains no instants.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Length of the window (zero if empty).
    pub fn length(&self) -> Duration {
        if self.is_empty() {
            Duration::ZERO
        } else {
            self.end - self.start
        }
    }

    /// Splits the window into at most `n` contiguous chunks of equal length,
    /// the parallelization unit of the engine's temporal partitioning.
    pub fn split(&self, n: usize) -> Vec<TimeWindow> {
        if self.is_empty() || n <= 1 {
            return vec![*self];
        }
        // Unbounded windows cannot be meaningfully chunked.
        if self.start == Timestamp::MIN || self.end == Timestamp::MAX {
            return vec![*self];
        }
        let total = self.end.0 - self.start.0;
        let n = (n as i64).min(total.max(1));
        let chunk = total / n;
        let mut out = Vec::with_capacity(n as usize);
        let mut cur = self.start.0;
        for i in 0..n {
            let end = if i == n - 1 { self.end.0 } else { cur + chunk };
            out.push(TimeWindow {
                start: Timestamp(cur),
                end: Timestamp(end),
            });
            cur = end;
        }
        out
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_date();
        let rem = self.0.rem_euclid(MICROS_PER_DAY);
        let h = rem / MICROS_PER_HOUR;
        let min = (rem % MICROS_PER_HOUR) / MICROS_PER_MIN;
        let s = (rem % MICROS_PER_MIN) / MICROS_PER_SEC;
        let us = rem % MICROS_PER_SEC;
        if us == 0 {
            write!(f, "{y:04}-{m:02}-{d:02}T{h:02}:{min:02}:{s:02}Z")
        } else {
            write!(f, "{y:04}-{m:02}-{d:02}T{h:02}:{min:02}:{s:02}.{us:06}Z")
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us % MICROS_PER_DAY == 0 {
            write!(f, "{} day", us / MICROS_PER_DAY)
        } else if us % MICROS_PER_HOUR == 0 {
            write!(f, "{} hour", us / MICROS_PER_HOUR)
        } else if us % MICROS_PER_MIN == 0 {
            write!(f, "{} min", us / MICROS_PER_MIN)
        } else if us % MICROS_PER_SEC == 0 {
            write!(f, "{} sec", us / MICROS_PER_SEC)
        } else if us % 1_000 == 0 {
            write!(f, "{} ms", us / 1_000)
        } else {
            write!(f, "{} us", us)
        }
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // March-based month [0, 11]
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of `days_from_civil`).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_jan_1_1970() {
        assert_eq!(Timestamp::from_date(1970, 1, 1), Timestamp(0));
        assert_eq!(Timestamp(0).to_date(), (1970, 1, 1));
    }

    #[test]
    fn date_roundtrip_across_leap_years() {
        for &(y, m, d) in &[
            (2000, 2, 29),
            (2018, 3, 19),
            (2016, 12, 31),
            (1999, 1, 1),
            (2020, 2, 29),
            (2100, 3, 1),
        ] {
            let ts = Timestamp::from_date(y, m, d);
            assert_eq!(ts.to_date(), (y, m, d), "roundtrip for {y}-{m}-{d}");
        }
    }

    #[test]
    fn parse_day_window() {
        let w = TimeWindow::parse_day("10/15/2018").unwrap();
        assert_eq!(w.start, Timestamp::from_date(2018, 10, 15));
        assert_eq!(w.end, Timestamp::from_date(2018, 10, 16));
        assert!(w.contains(w.start));
        assert!(!w.contains(w.end));
    }

    #[test]
    fn parse_day_rejects_garbage() {
        assert!(TimeWindow::parse_day("2018-10-15").is_err());
        assert!(TimeWindow::parse_day("13/01/2018").is_err());
        assert!(TimeWindow::parse_day("01/32/2018").is_err());
        assert!(TimeWindow::parse_day("hello").is_err());
    }

    #[test]
    fn window_intersection() {
        let a = TimeWindow::new(Timestamp(0), Timestamp(100));
        let b = TimeWindow::new(Timestamp(50), Timestamp(150));
        let i = a.intersect(&b);
        assert_eq!(i, TimeWindow::new(Timestamp(50), Timestamp(100)));
        let disjoint = TimeWindow::new(Timestamp(200), Timestamp(300));
        assert!(a.intersect(&disjoint).is_empty());
    }

    #[test]
    fn window_split_covers_whole_range() {
        let w = TimeWindow::new(Timestamp(0), Timestamp(1003));
        let parts = w.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].start, w.start);
        assert_eq!(parts.last().unwrap().end, w.end);
        for pair in parts.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        let total: i64 = parts.iter().map(|p| p.length().micros()).sum();
        assert_eq!(total, 1003);
    }

    #[test]
    fn window_split_degenerate_cases() {
        let w = TimeWindow::new(Timestamp(0), Timestamp(10));
        assert_eq!(w.split(1), vec![w]);
        assert_eq!(TimeWindow::ALL.split(8), vec![TimeWindow::ALL]);
        let tiny = TimeWindow::new(Timestamp(0), Timestamp(2));
        assert_eq!(tiny.split(10).len(), 2);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::from_mins(1).micros(), 60_000_000);
        assert_eq!(Duration::from_secs(10), Duration::from_millis(10_000));
        assert_eq!(Duration::from_hours(2), Duration::from_mins(120));
        assert_eq!(Duration::from_days(1), Duration::from_hours(24));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(100);
        assert_eq!(t + Duration::from_secs(5), Timestamp::from_secs(105));
        assert_eq!(t - Duration::from_secs(5), Timestamp::from_secs(95));
        assert_eq!(Timestamp::from_secs(105) - t, Duration::from_secs(5));
        assert_eq!(Timestamp::MAX.saturating_add(Duration(1)), Timestamp::MAX);
        assert_eq!(Timestamp::MIN.saturating_sub(Duration(1)), Timestamp::MIN);
    }

    #[test]
    fn display_formats() {
        let t = Timestamp::from_date(2018, 3, 19) + Duration::from_secs(3661);
        assert_eq!(t.to_string(), "2018-03-19T01:01:01Z");
        assert_eq!(Duration::from_mins(90).to_string(), "90 min");
        assert_eq!(Duration::from_hours(2).to_string(), "2 hour");
        assert_eq!(Duration(1500).to_string(), "1500 us");
    }
}
