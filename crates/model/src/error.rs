//! Error types for the data model layer.

use std::fmt;

/// Errors raised when constructing or parsing model values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A date string did not match the `mm/dd/yyyy` form.
    BadDate(String),
    /// An IPv4 address string was malformed.
    BadIp(String),
    /// An attribute name is not defined for the entity kind.
    UnknownAttribute {
        /// The entity kind the attribute was looked up on.
        kind: &'static str,
        /// The attribute name that failed to resolve.
        attr: String,
    },
    /// A duration string (e.g. `10 sec`) could not be parsed.
    BadDuration(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadDate(s) => write!(f, "invalid date (expected mm/dd/yyyy): {s:?}"),
            ModelError::BadIp(s) => write!(f, "invalid IPv4 address: {s:?}"),
            ModelError::UnknownAttribute { kind, attr } => {
                write!(f, "unknown attribute {attr:?} for entity kind {kind}")
            }
            ModelError::BadDuration(s) => write!(f, "invalid duration: {s:?}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_descriptive() {
        let e = ModelError::UnknownAttribute {
            kind: "proc",
            attr: "bogus".into(),
        };
        assert!(e.to_string().contains("bogus"));
        assert!(e.to_string().contains("proc"));
        assert!(ModelError::BadDate("x".into())
            .to_string()
            .contains("mm/dd/yyyy"));
    }
}
