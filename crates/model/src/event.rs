//! System events: the ⟨subject, operation, object⟩ interaction records.
//!
//! Events are the unit of storage and querying. Each event occurred on a
//! particular host (spatial dimension) at a particular time (temporal
//! dimension); the engine's partitioned execution is built on exactly these
//! two properties. Events are categorized into file / process / network
//! events according to their *object* entity, mirroring §2.1 of the paper.

use std::fmt;

use crate::entity::EntityKind;
use crate::error::ModelError;
use crate::ids::{AgentId, EntityId, EventId};
use crate::time::Timestamp;
use crate::value::Value;

/// Operations recorded by the data collection agents.
///
/// The subject of every operation is a process; the legal object kind is
/// determined by the operation (see [`Operation::object_kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Operation {
    /// Process reads a file.
    Read = 0,
    /// Process writes a file.
    Write = 1,
    /// Process executes a file (image load / exec).
    Execute = 2,
    /// Process deletes a file.
    Delete = 3,
    /// Process renames a file.
    Rename = 4,
    /// Process starts another process.
    Start = 5,
    /// Process terminates another process.
    End = 6,
    /// Process opens an outbound network connection.
    Connect = 7,
    /// Process accepts an inbound network connection.
    Accept = 8,
    /// Process sends data over a connection.
    Send = 9,
    /// Process receives data over a connection.
    Recv = 10,
}

/// Total number of distinct operations (for dense per-op arrays).
pub const OPERATION_COUNT: usize = 11;

/// All operations in discriminant order.
pub const ALL_OPERATIONS: [Operation; OPERATION_COUNT] = [
    Operation::Read,
    Operation::Write,
    Operation::Execute,
    Operation::Delete,
    Operation::Rename,
    Operation::Start,
    Operation::End,
    Operation::Connect,
    Operation::Accept,
    Operation::Send,
    Operation::Recv,
];

impl Operation {
    /// The AIQL keyword for the operation.
    pub fn keyword(self) -> &'static str {
        match self {
            Operation::Read => "read",
            Operation::Write => "write",
            Operation::Execute => "execute",
            Operation::Delete => "delete",
            Operation::Rename => "rename",
            Operation::Start => "start",
            Operation::End => "end",
            Operation::Connect => "connect",
            Operation::Accept => "accept",
            Operation::Send => "send",
            Operation::Recv => "recv",
        }
    }

    /// Parses an AIQL operation keyword.
    pub fn parse(s: &str) -> Result<Self, ModelError> {
        Ok(match s {
            "read" => Operation::Read,
            "write" => Operation::Write,
            "execute" | "exec" => Operation::Execute,
            "delete" => Operation::Delete,
            "rename" => Operation::Rename,
            "start" => Operation::Start,
            "end" | "terminate" => Operation::End,
            "connect" => Operation::Connect,
            "accept" => Operation::Accept,
            "send" => Operation::Send,
            "recv" | "receive" => Operation::Recv,
            _ => {
                return Err(ModelError::UnknownAttribute {
                    kind: "operation",
                    attr: s.to_string(),
                })
            }
        })
    }

    /// Dense index for per-op arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Reconstructs an operation from its dense index.
    pub fn from_index(i: usize) -> Option<Self> {
        ALL_OPERATIONS.get(i).copied()
    }

    /// The *primary* object entity kind of this operation, used to
    /// categorize events into file/process/network events.
    pub fn object_kind(self) -> EntityKind {
        match self {
            Operation::Read
            | Operation::Write
            | Operation::Execute
            | Operation::Delete
            | Operation::Rename => EntityKind::File,
            Operation::Start | Operation::End => EntityKind::Process,
            Operation::Connect | Operation::Accept | Operation::Send | Operation::Recv => {
                EntityKind::NetConn
            }
        }
    }

    /// All object entity kinds this operation may legally target.
    ///
    /// `read`/`write` move data to files *or* network connections (the
    /// paper's Query 1 and Query 3 both use `proc … read || write ip …`),
    /// and `connect`/`accept` may target processes directly — the
    /// cross-host tracking edges of dependency queries.
    pub fn allowed_object_kinds(self) -> &'static [EntityKind] {
        match self {
            Operation::Read | Operation::Write => &[EntityKind::File, EntityKind::NetConn],
            Operation::Execute | Operation::Delete | Operation::Rename => &[EntityKind::File],
            Operation::Start | Operation::End => &[EntityKind::Process],
            Operation::Connect | Operation::Accept => &[EntityKind::NetConn, EntityKind::Process],
            Operation::Send | Operation::Recv => &[EntityKind::NetConn],
        }
    }

    /// The event type (by object kind).
    pub fn event_type(self) -> EventType {
        match self.object_kind() {
            EntityKind::File => EventType::File,
            EntityKind::Process => EventType::Process,
            EntityKind::NetConn => EventType::Network,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Event category, determined by the object entity kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventType {
    /// Object is a file.
    File,
    /// Object is a process.
    Process,
    /// Object is a network connection.
    Network,
}

/// A recorded system event: ⟨subject, operation, object⟩ plus spatial and
/// temporal context and the data amount moved (for read/write/send/recv).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Store-assigned id, unique and monotone in commit order.
    pub id: EventId,
    /// Host the event occurred on.
    pub agent: AgentId,
    /// The operation performed.
    pub op: Operation,
    /// Subject process entity.
    pub subject: EntityId,
    /// Object entity (file / process / network connection).
    pub object: EntityId,
    /// Start of the interaction.
    pub start_time: Timestamp,
    /// End of the interaction (>= `start_time`).
    pub end_time: Timestamp,
    /// Bytes transferred (0 when not applicable).
    pub amount: u64,
}

impl Event {
    /// The event category.
    pub fn event_type(&self) -> EventType {
        self.op.event_type()
    }

    /// Event-level attribute lookup used by query evaluation
    /// (`evt.amount`, `evt.starttime`, …).
    pub fn get(&self, attr: &str) -> Result<Value, ModelError> {
        match attr {
            "amount" => Ok(Value::Int(self.amount as i64)),
            "starttime" | "start_time" => Ok(Value::Time(self.start_time)),
            "endtime" | "end_time" => Ok(Value::Time(self.end_time)),
            "agentid" => Ok(Value::Int(i64::from(self.agent.raw()))),
            "optype" | "operation" => Ok(Value::Int(self.op.index() as i64)),
            "id" => Ok(Value::Int(self.id.raw() as i64)),
            _ => Err(ModelError::UnknownAttribute {
                kind: "event",
                attr: attr.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_keyword_roundtrip() {
        for op in ALL_OPERATIONS {
            assert_eq!(Operation::parse(op.keyword()).unwrap(), op);
        }
        assert!(Operation::parse("frobnicate").is_err());
    }

    #[test]
    fn op_index_roundtrip() {
        for (i, op) in ALL_OPERATIONS.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(Operation::from_index(i), Some(*op));
        }
        assert_eq!(Operation::from_index(OPERATION_COUNT), None);
    }

    #[test]
    fn event_types_follow_object_kind() {
        assert_eq!(Operation::Read.event_type(), EventType::File);
        assert_eq!(Operation::Start.event_type(), EventType::Process);
        assert_eq!(Operation::Connect.event_type(), EventType::Network);
        assert_eq!(Operation::Send.object_kind(), EntityKind::NetConn);
    }

    #[test]
    fn allowed_object_kinds_cover_data_transfer_and_tracking() {
        assert!(Operation::Write
            .allowed_object_kinds()
            .contains(&EntityKind::NetConn));
        assert!(Operation::Read
            .allowed_object_kinds()
            .contains(&EntityKind::File));
        assert!(Operation::Connect
            .allowed_object_kinds()
            .contains(&EntityKind::Process));
        assert!(!Operation::Start
            .allowed_object_kinds()
            .contains(&EntityKind::File));
    }

    #[test]
    fn aliases_parse() {
        assert_eq!(Operation::parse("exec").unwrap(), Operation::Execute);
        assert_eq!(Operation::parse("terminate").unwrap(), Operation::End);
        assert_eq!(Operation::parse("receive").unwrap(), Operation::Recv);
    }

    #[test]
    fn event_attribute_lookup() {
        let e = Event {
            id: EventId(5),
            agent: AgentId(3),
            op: Operation::Send,
            subject: EntityId(1),
            object: EntityId(2),
            start_time: Timestamp::from_secs(100),
            end_time: Timestamp::from_secs(101),
            amount: 4096,
        };
        assert_eq!(e.get("amount").unwrap(), Value::Int(4096));
        assert_eq!(e.get("agentid").unwrap(), Value::Int(3));
        assert_eq!(
            e.get("starttime").unwrap(),
            Value::Time(Timestamp::from_secs(100))
        );
        assert!(e.get("bogus").is_err());
    }
}
