//! # aiql-model
//!
//! The domain-specific data model for system monitoring data, as described in
//! §2.1 of the AIQL paper (Gao et al., VLDB 2019 / USENIX ATC 2018).
//!
//! System monitoring observes kernel-level system calls and records the
//! interactions among **system entities** as **system events**. This crate
//! defines:
//!
//! * [`Entity`] — files, processes, and network connections, each carrying
//!   the critical security-related attributes collected by the data agents
//!   (executable name, file path, IPs/ports, …);
//! * [`Event`] — the ⟨subject, operation, object⟩ (SVO) triple with the
//!   strong *spatial* (agent/host id) and *temporal* (timestamp) properties
//!   the storage and engine layers exploit;
//! * [`Operation`] / [`EventType`] — the event taxonomy (file events, process
//!   events, network events, categorized by object kind);
//! * [`Value`] and [`StringPattern`] — attribute values and SQL-`LIKE` style
//!   patterns used in query constraints;
//! * [`Interner`] — a string dictionary shared by storage and engines so that
//!   attribute comparisons are integer comparisons.
//!
//! Everything downstream (storage, language, engines, simulator) depends only
//! on this crate for its data vocabulary.

pub mod cancel;
pub mod entity;
pub mod error;
pub mod event;
pub mod ids;
pub mod interner;
pub mod pattern;
pub mod time;
pub mod value;

pub use cancel::CancelToken;
pub use entity::{
    Entity, EntityAttrs, EntityKind, FileAttrs, NetConnAttrs, ProcessAttrs, Protocol,
};
pub use error::ModelError;
pub use event::{Event, EventType, Operation, ALL_OPERATIONS, OPERATION_COUNT};
pub use ids::{AgentId, EntityId, EventId};
pub use interner::{Interner, Symbol};
pub use pattern::{PatternShape, StringPattern};
pub use time::{Duration, TimeWindow, Timestamp};
pub use value::{IpV4, Value};
