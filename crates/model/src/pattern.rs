//! SQL-`LIKE` style string patterns.
//!
//! AIQL entity constraints use `%`-wildcard patterns pervasively — e.g.
//! `proc p1["%cmd.exe"]` matches any process whose executable path ends with
//! `cmd.exe`. This module implements the matcher plus the structural
//! analysis (prefix/suffix/exact classification) the storage layer uses to
//! pick index strategies.

use std::fmt;

/// A `LIKE` pattern over strings. `%` matches any (possibly empty) sequence
/// of characters; `_` matches exactly one character. Matching is
/// case-insensitive for ASCII, mirroring how investigators match Windows
/// artifact names (`%CMD.exe` should match `cmd.exe`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StringPattern {
    raw: String,
    segments: Vec<Segment>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Segment {
    /// A literal run (lowercased); `_` wildcards are kept as `\x00` markers.
    Literal(Vec<PatChar>),
    /// A `%` wildcard.
    Any,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PatChar {
    Exact(char),
    One,
}

/// Structural classification of a pattern, used for index selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternShape {
    /// No wildcards at all: equality lookup.
    Exact,
    /// `prefix%`: range/prefix lookup.
    Prefix,
    /// `%suffix`: suffix lookup (dictionary scan in our store).
    Suffix,
    /// `%infix%` or anything more complex: dictionary scan.
    Scan,
}

impl StringPattern {
    /// Compiles a pattern string.
    pub fn new(raw: &str) -> Self {
        let mut segments = Vec::new();
        let mut lit: Vec<PatChar> = Vec::new();
        for c in raw.chars() {
            match c {
                '%' => {
                    if !lit.is_empty() {
                        segments.push(Segment::Literal(std::mem::take(&mut lit)));
                    }
                    if segments.last() != Some(&Segment::Any) {
                        segments.push(Segment::Any);
                    }
                }
                '_' => lit.push(PatChar::One),
                c => lit.push(PatChar::Exact(c.to_ascii_lowercase())),
            }
        }
        if !lit.is_empty() {
            segments.push(Segment::Literal(lit));
        }
        StringPattern {
            raw: raw.to_string(),
            segments,
        }
    }

    /// The original pattern text.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// Whether the pattern contains no wildcards.
    pub fn is_exact(&self) -> bool {
        matches!(self.shape(), PatternShape::Exact)
    }

    /// Classifies the pattern for index selection.
    pub fn shape(&self) -> PatternShape {
        let has_one = self.segments.iter().any(
            |s| matches!(s, Segment::Literal(l) if l.iter().any(|c| matches!(c, PatChar::One))),
        );
        if has_one {
            return PatternShape::Scan;
        }
        match self.segments.as_slice() {
            [] | [Segment::Literal(_)] => PatternShape::Exact,
            [Segment::Literal(_), Segment::Any] => PatternShape::Prefix,
            [Segment::Any, Segment::Literal(_)] => PatternShape::Suffix,
            _ => PatternShape::Scan,
        }
    }

    /// An estimate of the pattern's selectivity in `[0, 1]`: lower means more
    /// selective. Exact patterns are the most selective; bare `%` matches
    /// everything. The engine's pruning-power scheduler consumes this.
    pub fn selectivity_hint(&self) -> f64 {
        let literal_len: usize = self
            .segments
            .iter()
            .map(|s| match s {
                Segment::Literal(l) => l.len(),
                Segment::Any => 0,
            })
            .sum();
        match self.shape() {
            PatternShape::Exact => 0.001,
            PatternShape::Prefix | PatternShape::Suffix => {
                (0.05 / (literal_len.max(1) as f64)).max(0.002)
            }
            PatternShape::Scan => {
                if literal_len == 0 {
                    1.0
                } else {
                    (0.2 / (literal_len as f64)).max(0.005)
                }
            }
        }
    }

    /// The maximal literal runs of the pattern (lowercased), split at every
    /// wildcard (`%` and `_`). A matching string must contain each run, in
    /// order — which is what lets an n-gram index pre-filter candidates: any
    /// string matching `%info_stealer%` necessarily contains the trigrams of
    /// `info` and `stealer`.
    pub fn literal_runs(&self) -> Vec<String> {
        let mut runs = Vec::new();
        let mut cur = String::new();
        for seg in &self.segments {
            match seg {
                Segment::Any => {
                    if !cur.is_empty() {
                        runs.push(std::mem::take(&mut cur));
                    }
                }
                Segment::Literal(lit) => {
                    for c in lit {
                        match c {
                            PatChar::Exact(e) => cur.push(*e),
                            PatChar::One => {
                                if !cur.is_empty() {
                                    runs.push(std::mem::take(&mut cur));
                                }
                            }
                        }
                    }
                }
            }
        }
        if !cur.is_empty() {
            runs.push(cur);
        }
        runs
    }

    /// The lowercased literal prefix for [`PatternShape::Prefix`] patterns
    /// (`prefix%`), usable as a range bound on a sorted dictionary.
    pub fn literal_prefix(&self) -> Option<String> {
        if self.shape() != PatternShape::Prefix {
            return None;
        }
        match self.segments.first() {
            Some(Segment::Literal(lit)) => Some(
                lit.iter()
                    .map(|c| match c {
                        PatChar::Exact(e) => *e,
                        PatChar::One => unreachable!("Prefix shape has no `_`"),
                    })
                    .collect(),
            ),
            _ => None,
        }
    }

    /// The lowercased literal of a wildcard-free pattern, usable as an exact
    /// (case-insensitive) dictionary lookup key.
    pub fn exact_lowered(&self) -> Option<String> {
        if self.shape() != PatternShape::Exact {
            return None;
        }
        match self.segments.as_slice() {
            [] => Some(String::new()),
            [Segment::Literal(lit)] => Some(
                lit.iter()
                    .map(|c| match c {
                        PatChar::Exact(e) => *e,
                        PatChar::One => unreachable!("Exact shape has no `_`"),
                    })
                    .collect(),
            ),
            _ => None,
        }
    }

    /// Tests the pattern against a string (ASCII case-insensitive).
    pub fn matches(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().map(|c| c.to_ascii_lowercase()).collect();
        Self::match_segments(&self.segments, &chars)
    }

    fn match_segments(segs: &[Segment], input: &[char]) -> bool {
        match segs.split_first() {
            None => input.is_empty(),
            Some((Segment::Literal(lit), rest)) => {
                if input.len() < lit.len() {
                    return false;
                }
                let ok = lit.iter().zip(input.iter()).all(|(p, &c)| match p {
                    PatChar::Exact(e) => *e == c,
                    PatChar::One => true,
                });
                ok && Self::match_segments(rest, &input[lit.len()..])
            }
            Some((Segment::Any, rest)) => {
                if rest.is_empty() {
                    return true;
                }
                // Try every split point; literals after % anchor the search.
                for start in 0..=input.len() {
                    if Self::match_segments(rest, &input[start..]) {
                        return true;
                    }
                }
                false
            }
        }
    }
}

impl fmt::Display for StringPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> StringPattern {
        StringPattern::new(s)
    }

    #[test]
    fn exact_match() {
        assert!(p("cmd.exe").matches("cmd.exe"));
        assert!(p("cmd.exe").matches("CMD.EXE"));
        assert!(!p("cmd.exe").matches("cmd.exe2"));
        assert!(!p("cmd.exe").matches("acmd.exe"));
    }

    #[test]
    fn suffix_match() {
        let pat = p("%cmd.exe");
        assert!(pat.matches("cmd.exe"));
        assert!(pat.matches("C:\\Windows\\System32\\cmd.exe"));
        assert!(!pat.matches("cmd.exe.bak"));
        assert_eq!(pat.shape(), PatternShape::Suffix);
    }

    #[test]
    fn prefix_match() {
        let pat = p("/var/www/%");
        assert!(pat.matches("/var/www/html/index.php"));
        assert!(!pat.matches("/etc/passwd"));
        assert_eq!(pat.shape(), PatternShape::Prefix);
    }

    #[test]
    fn infix_match() {
        let pat = p("%info_stealer%");
        assert!(pat.matches("/var/www/uploads/info_stealer.sh"));
        assert!(pat.matches("info_stealer"));
        assert!(!pat.matches("infostealer"));
        assert_eq!(pat.shape(), PatternShape::Scan);
    }

    #[test]
    fn underscore_matches_one_char() {
        let pat = p("a_c");
        assert!(pat.matches("abc"));
        assert!(pat.matches("axc"));
        assert!(!pat.matches("ac"));
        assert!(!pat.matches("abbc"));
        assert_eq!(pat.shape(), PatternShape::Scan);
    }

    #[test]
    fn bare_percent_matches_everything() {
        let pat = p("%");
        assert!(pat.matches(""));
        assert!(pat.matches("anything at all"));
        assert!(pat.selectivity_hint() >= 0.99);
    }

    #[test]
    fn consecutive_percents_collapse() {
        let pat = p("%%x%%");
        assert!(pat.matches("x"));
        assert!(pat.matches("ax b x c"));
        assert!(!pat.matches("y"));
    }

    #[test]
    fn multi_segment_pattern() {
        let pat = p("%/bin/cp%");
        assert!(pat.matches("/usr/bin/cp"));
        assert!(pat.matches("/bin/cp"));
        assert!(!pat.matches("/bin/cat"));
    }

    #[test]
    fn selectivity_ordering_is_sane() {
        // Exact is more selective than suffix, which beats a bare scan.
        assert!(p("cmd.exe").selectivity_hint() < p("%cmd.exe").selectivity_hint());
        assert!(p("%cmd.exe").selectivity_hint() < p("%").selectivity_hint());
    }

    #[test]
    fn literal_runs_split_at_wildcards() {
        assert_eq!(p("%info_stealer%").literal_runs(), vec!["info", "stealer"]);
        assert_eq!(p("CMD.exe").literal_runs(), vec!["cmd.exe"]);
        assert_eq!(p("a_c%d").literal_runs(), vec!["a", "c", "d"]);
        assert!(p("%").literal_runs().is_empty());
        assert!(p("___").literal_runs().is_empty());
    }

    #[test]
    fn structural_accessors_follow_shape() {
        assert_eq!(
            p("/var/WWW/%").literal_prefix().as_deref(),
            Some("/var/www/")
        );
        assert!(p("%cmd.exe").literal_prefix().is_none());
        assert!(p("a_c%").literal_prefix().is_none());
        assert_eq!(p("Cmd.EXE").exact_lowered().as_deref(), Some("cmd.exe"));
        assert_eq!(p("").exact_lowered().as_deref(), Some(""));
        assert!(p("cmd%").exact_lowered().is_none());
        assert!(p("c_d").exact_lowered().is_none());
    }

    #[test]
    fn empty_pattern_matches_only_empty() {
        assert!(p("").matches(""));
        assert!(!p("").matches("x"));
        assert!(p("").is_exact());
    }
}
