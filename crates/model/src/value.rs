//! Attribute values.
//!
//! Entity and event attributes are dynamically typed at the query boundary
//! (an AIQL constraint like `dstip = "XXX.129"` compares a string literal
//! against an IP attribute), so [`Value`] provides the small dynamic value
//! vocabulary plus the comparison semantics the engines share.

use std::cmp::Ordering;
use std::fmt;

use crate::error::ModelError;
use crate::interner::{Interner, Symbol};
use crate::time::Timestamp;

/// An IPv4 address stored as a big-endian `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IpV4(pub u32);

impl IpV4 {
    /// Builds an address from its four octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpV4(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets of the address.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Parses dotted-quad notation.
    pub fn parse(s: &str) -> Result<Self, ModelError> {
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in s.split('.') {
            if n >= 4 {
                return Err(ModelError::BadIp(s.to_string()));
            }
            octets[n] = part.parse().map_err(|_| ModelError::BadIp(s.to_string()))?;
            n += 1;
        }
        if n != 4 {
            return Err(ModelError::BadIp(s.to_string()));
        }
        Ok(IpV4(u32::from_be_bytes(octets)))
    }
}

impl fmt::Display for IpV4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// A dynamically-typed attribute value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Absent attribute.
    Null,
    /// Signed integer (pids, ports, byte counts, window indices).
    Int(i64),
    /// Floating point (aggregate results such as `avg(evt.amount)`).
    Float(f64),
    /// Interned string (names, paths, users).
    Str(Symbol),
    /// IPv4 address.
    Ip(IpV4),
    /// Timestamp (event start/end times).
    Time(Timestamp),
    /// Boolean (filter results).
    Bool(bool),
}

impl Value {
    /// Whether this value is `Null`.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            Value::Time(t) => Some(t.micros() as f64),
            Value::Bool(b) => Some(if b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view of the value, if it has one.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Float(f) => Some(f as i64),
            Value::Time(t) => Some(t.micros()),
            Value::Bool(b) => Some(i64::from(b)),
            _ => None,
        }
    }

    /// Truthiness used by `having`/filter evaluation.
    pub fn truthy(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int(i) => i != 0,
            Value::Float(f) => f != 0.0,
            Value::Null => false,
            _ => true,
        }
    }

    /// Compares two values with numeric coercion; string/IP comparisons fall
    /// back to their natural orders. Cross-type comparisons that make no
    /// sense return `None` (treated as "filter fails").
    pub fn compare(self, other: Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) | (_, Null) => None,
            (Str(a), Str(b)) => Some(a.cmp(&b)), // symbol order: only Equal is meaningful
            (Ip(a), Ip(b)) => Some(a.cmp(&b)),
            (Bool(a), Bool(b)) => Some(a.cmp(&b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Renders the value for result tables, resolving symbols through the
    /// given interner.
    pub fn render(self, interner: &Interner) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{:.1}", f)
                } else {
                    format!("{:.4}", f)
                }
            }
            Value::Str(s) => interner.resolve(s).to_string(),
            Value::Ip(ip) => ip.to_string(),
            Value::Time(t) => t.to_string(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Ip(ip) => write!(f, "{ip}"),
            Value::Time(t) => write!(f, "{t}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_parse_and_display_roundtrip() {
        let ip = IpV4::parse("10.0.4.129").unwrap();
        assert_eq!(ip.to_string(), "10.0.4.129");
        assert_eq!(ip, IpV4::from_octets(10, 0, 4, 129));
    }

    #[test]
    fn ip_parse_rejects_malformed() {
        assert!(IpV4::parse("10.0.4").is_err());
        assert!(IpV4::parse("10.0.4.129.1").is_err());
        assert!(IpV4::parse("10.0.4.300").is_err());
        assert!(IpV4::parse("ten.zero.four.one").is_err());
        assert!(IpV4::parse("").is_err());
    }

    #[test]
    fn numeric_coercion_in_compare() {
        assert_eq!(
            Value::Int(3).compare(Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.compare(Value::Int(1)), None);
    }

    #[test]
    fn cross_type_nonsense_comparisons_fail() {
        let mut interner = Interner::new();
        let s = interner.intern("x");
        assert_eq!(Value::Str(s).compare(Value::Int(3)), None);
        assert_eq!(Value::Ip(IpV4(1)).compare(Value::Str(s)), None);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Int(5).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Null.truthy());
    }

    #[test]
    fn render_resolves_symbols() {
        let mut interner = Interner::new();
        let s = interner.intern("powershell.exe");
        assert_eq!(Value::Str(s).render(&interner), "powershell.exe");
        assert_eq!(Value::Float(2.0).render(&interner), "2.0");
        assert_eq!(Value::Float(2.25).render(&interner), "2.2500");
    }
}
