//! Strongly-typed identifiers for hosts, entities, and events.
//!
//! System monitoring data is generated *per host* in the enterprise; the
//! agent id is the spatial dimension the engine partitions on. Entity and
//! event ids are dense store-local indices, which lets the storage layer use
//! them directly as array offsets and posting-list payloads.

use std::fmt;

/// Identifier of a monitored host (the paper's `agentid`).
///
/// Each data collection agent (auditd / ETW / DTrace based) is deployed on
/// one host; every event it reports carries this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(pub u32);

/// Dense identifier of a deduplicated system entity within one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

/// Dense identifier of a system event within one store.
///
/// Event ids are assigned in commit order and are unique across partitions,
/// so they double as a stable tiebreaker for events with equal timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl AgentId {
    /// Returns the raw numeric id.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl EntityId {
    /// Returns the raw numeric id, usable as an array index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EventId {
    /// Returns the raw numeric id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(EventId(1) < EventId(2));
        assert!(EntityId(0) < EntityId(10));
        assert!(AgentId(3) > AgentId(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AgentId(7).to_string(), "agent7");
        assert_eq!(EntityId(42).to_string(), "n42");
        assert_eq!(EventId(9).to_string(), "e9");
    }

    #[test]
    fn entity_id_roundtrips_through_index() {
        let id = EntityId(123);
        assert_eq!(id.index(), 123);
        assert_eq!(EntityId(id.index() as u32), id);
    }
}
