//! Cooperative cancellation.
//!
//! A [`CancelToken`] is the cross-layer kill switch: the query governor
//! polls it at batch boundaries, and storage maintenance (segment
//! compaction) checks it between merge steps, so a session drain or
//! process shutdown can abort long-running work cleanly from any thread.
//! It lives in the model crate because both the storage and engine layers
//! honor it without depending on each other.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A caller-held cancellation handle. Clone it, hand the work to another
/// thread, and [`cancel`](CancelToken::cancel) from anywhere; the running
/// work observes the flag at its next check point.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }
}
