//! System entities: processes, files, and network connections.
//!
//! In the paper's data model, *subjects* are processes originating from
//! software applications and *objects* can be files, processes, or network
//! connections. Each entity carries the critical security-related attributes
//! collected by the agents. Entities are deduplicated by the storage layer:
//! two observations with identical attributes map to the same [`EntityId`].

use crate::error::ModelError;
use crate::ids::{AgentId, EntityId};
use crate::interner::Symbol;
use crate::value::{IpV4, Value};

/// The three kinds of system entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityKind {
    /// A process (subject of all events; object of process events).
    Process,
    /// A file.
    File,
    /// A network connection endpoint pair.
    NetConn,
}

impl EntityKind {
    /// The AIQL keyword for this kind (`proc` / `file` / `ip`).
    pub fn keyword(self) -> &'static str {
        match self {
            EntityKind::Process => "proc",
            EntityKind::File => "file",
            EntityKind::NetConn => "ip",
        }
    }

    /// The default attribute used by AIQL's context-aware syntax shortcuts:
    /// `proc p["%cmd.exe"]` constrains `exe_name`, `file f["%.dmp"]`
    /// constrains `name`, `ip i` in a return clause projects `dst_ip`.
    pub fn default_attr(self) -> &'static str {
        match self {
            EntityKind::Process => "exe_name",
            EntityKind::File => "name",
            EntityKind::NetConn => "dst_ip",
        }
    }

    /// All attribute names defined for the kind.
    pub fn attr_names(self) -> &'static [&'static str] {
        match self {
            EntityKind::Process => &["pid", "exe_name", "user", "cmdline"],
            EntityKind::File => &["name", "owner"],
            EntityKind::NetConn => &["src_ip", "src_port", "dst_ip", "dst_port", "protocol"],
        }
    }
}

/// Transport protocol of a network connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
}

impl Protocol {
    /// Lowercase protocol name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
        }
    }
}

/// Attributes of a process entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessAttrs {
    /// OS process id.
    pub pid: u32,
    /// Executable path/name (interned).
    pub exe_name: Symbol,
    /// Owning user (interned).
    pub user: Symbol,
    /// Command line (interned).
    pub cmdline: Symbol,
}

/// Attributes of a file entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileAttrs {
    /// Full path (interned).
    pub name: Symbol,
    /// Owning user (interned).
    pub owner: Symbol,
}

/// Attributes of a network connection entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetConnAttrs {
    /// Source address.
    pub src_ip: IpV4,
    /// Source port.
    pub src_port: u16,
    /// Destination address.
    pub dst_ip: IpV4,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

/// Kind-specific attribute payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityAttrs {
    /// Process attributes.
    Process(ProcessAttrs),
    /// File attributes.
    File(FileAttrs),
    /// Network connection attributes.
    NetConn(NetConnAttrs),
}

impl EntityAttrs {
    /// The kind of entity these attributes describe.
    pub fn kind(&self) -> EntityKind {
        match self {
            EntityAttrs::Process(_) => EntityKind::Process,
            EntityAttrs::File(_) => EntityKind::File,
            EntityAttrs::NetConn(_) => EntityKind::NetConn,
        }
    }

    /// Looks up an attribute by name. `"name"` on a process resolves to
    /// `exe_name` so the context-aware shortcut works uniformly.
    pub fn get(&self, attr: &str) -> Result<Value, ModelError> {
        match self {
            EntityAttrs::Process(p) => match attr {
                "pid" => Ok(Value::Int(i64::from(p.pid))),
                "exe_name" | "name" => Ok(Value::Str(p.exe_name)),
                "user" => Ok(Value::Str(p.user)),
                "cmdline" => Ok(Value::Str(p.cmdline)),
                _ => Err(ModelError::UnknownAttribute {
                    kind: "proc",
                    attr: attr.to_string(),
                }),
            },
            EntityAttrs::File(f) => match attr {
                "name" | "path" => Ok(Value::Str(f.name)),
                "owner" => Ok(Value::Str(f.owner)),
                _ => Err(ModelError::UnknownAttribute {
                    kind: "file",
                    attr: attr.to_string(),
                }),
            },
            EntityAttrs::NetConn(n) => match attr {
                "src_ip" | "srcip" => Ok(Value::Ip(n.src_ip)),
                "src_port" | "srcport" => Ok(Value::Int(i64::from(n.src_port))),
                "dst_ip" | "dstip" => Ok(Value::Ip(n.dst_ip)),
                "dst_port" | "dstport" => Ok(Value::Int(i64::from(n.dst_port))),
                "protocol" => Ok(Value::Int(match n.protocol {
                    Protocol::Tcp => 6,
                    Protocol::Udp => 17,
                })),
                _ => Err(ModelError::UnknownAttribute {
                    kind: "ip",
                    attr: attr.to_string(),
                }),
            },
        }
    }

    /// The value of the kind's default attribute (used by the dictionary
    /// pattern index and the context-aware shortcuts).
    pub fn default_value(&self) -> Value {
        match self {
            EntityAttrs::Process(p) => Value::Str(p.exe_name),
            EntityAttrs::File(f) => Value::Str(f.name),
            EntityAttrs::NetConn(n) => Value::Ip(n.dst_ip),
        }
    }
}

/// A deduplicated system entity: attributes plus the host it was observed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Entity {
    /// Store-local dense id.
    pub id: EntityId,
    /// Host the entity was observed on.
    pub agent: AgentId,
    /// Kind-specific attributes.
    pub attrs: EntityAttrs,
}

impl Entity {
    /// The entity kind.
    pub fn kind(&self) -> EntityKind {
        self.attrs.kind()
    }

    /// Attribute lookup (see [`EntityAttrs::get`]); `agentid` resolves on any
    /// kind because every entity is host-local.
    pub fn get(&self, attr: &str) -> Result<Value, ModelError> {
        if attr == "agentid" {
            return Ok(Value::Int(i64::from(self.agent.raw())));
        }
        self.attrs.get(attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc_entity() -> Entity {
        Entity {
            id: EntityId(1),
            agent: AgentId(7),
            attrs: EntityAttrs::Process(ProcessAttrs {
                pid: 4242,
                exe_name: Symbol(10),
                user: Symbol(11),
                cmdline: Symbol(12),
            }),
        }
    }

    #[test]
    fn default_attrs_per_kind() {
        assert_eq!(EntityKind::Process.default_attr(), "exe_name");
        assert_eq!(EntityKind::File.default_attr(), "name");
        assert_eq!(EntityKind::NetConn.default_attr(), "dst_ip");
    }

    #[test]
    fn process_attribute_lookup() {
        let e = proc_entity();
        assert_eq!(e.get("pid").unwrap(), Value::Int(4242));
        assert_eq!(e.get("exe_name").unwrap(), Value::Str(Symbol(10)));
        // "name" aliases exe_name on processes (context-aware shortcut).
        assert_eq!(e.get("name").unwrap(), Value::Str(Symbol(10)));
        assert_eq!(e.get("agentid").unwrap(), Value::Int(7));
        assert!(e.get("dstip").is_err());
    }

    #[test]
    fn netconn_attribute_lookup() {
        let e = Entity {
            id: EntityId(2),
            agent: AgentId(1),
            attrs: EntityAttrs::NetConn(NetConnAttrs {
                src_ip: IpV4::from_octets(10, 0, 0, 1),
                src_port: 50000,
                dst_ip: IpV4::from_octets(10, 0, 4, 129),
                dst_port: 443,
                protocol: Protocol::Tcp,
            }),
        };
        assert_eq!(
            e.get("dstip").unwrap(),
            Value::Ip(IpV4::from_octets(10, 0, 4, 129))
        );
        assert_eq!(e.get("dst_port").unwrap(), Value::Int(443));
        assert_eq!(e.get("protocol").unwrap(), Value::Int(6));
        assert!(e.get("cmdline").is_err());
    }

    #[test]
    fn file_attribute_lookup() {
        let e = Entity {
            id: EntityId(3),
            agent: AgentId(2),
            attrs: EntityAttrs::File(FileAttrs {
                name: Symbol(20),
                owner: Symbol(21),
            }),
        };
        assert_eq!(e.get("name").unwrap(), Value::Str(Symbol(20)));
        assert_eq!(e.get("path").unwrap(), Value::Str(Symbol(20)));
        assert_eq!(e.get("owner").unwrap(), Value::Str(Symbol(21)));
        assert_eq!(e.kind(), EntityKind::File);
    }

    #[test]
    fn unknown_attribute_error_names_kind() {
        let e = proc_entity();
        let err = e.get("nonsense").unwrap_err();
        assert!(err.to_string().contains("proc"));
    }
}
