//! Property-based tests for the data model primitives.

use aiql_model::{Duration, Interner, IpV4, StringPattern, TimeWindow, Timestamp};
use proptest::prelude::*;

proptest! {
    /// Civil-date conversion roundtrips for every day across ±80 years.
    #[test]
    fn date_roundtrip(days in -30_000i64..30_000) {
        let ts = Timestamp(days * aiql_model::time::MICROS_PER_DAY);
        let (y, m, d) = ts.to_date();
        prop_assert_eq!(Timestamp::from_date(y, m, d), ts);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    /// Splitting a window never loses or duplicates time.
    #[test]
    fn window_split_partitions(start in -1_000_000i64..1_000_000, len in 1i64..1_000_000, n in 1usize..16) {
        let w = TimeWindow::new(Timestamp(start), Timestamp(start + len));
        let parts = w.split(n);
        prop_assert_eq!(parts[0].start, w.start);
        prop_assert_eq!(parts.last().unwrap().end, w.end);
        for pair in parts.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
        let total: i64 = parts.iter().map(|p| p.length().micros()).sum();
        prop_assert_eq!(total, len);
    }

    /// A literal string always matches itself as a pattern (no wildcards in
    /// the alphabet used here).
    #[test]
    fn literal_pattern_self_match(s in "[a-z0-9./\\\\-]{0,24}") {
        let p = StringPattern::new(&s);
        prop_assert!(p.matches(&s));
        prop_assert!(p.is_exact());
    }

    /// `%s%` matches any string that contains `s`.
    #[test]
    fn infix_pattern_contains(prefix in "[a-z]{0,8}", middle in "[a-z]{1,8}", suffix in "[a-z]{0,8}") {
        let p = StringPattern::new(&format!("%{middle}%"));
        let hay = format!("{prefix}{middle}{suffix}");
        let matched = p.matches(&hay);
        prop_assert!(matched);
    }

    /// Suffix patterns match exactly the strings ending with the literal.
    #[test]
    fn suffix_pattern_semantics(head in "[a-z]{0,12}", tail in "[a-z]{1,8}") {
        let p = StringPattern::new(&format!("%{tail}"));
        let hit = format!("{head}{tail}");
        // Appending a char outside the tail alphabet guarantees a miss.
        let miss = format!("{head}{tail}9");
        prop_assert!(p.matches(&hit));
        prop_assert!(!p.matches(&miss));
    }

    /// Pattern matching is ASCII case-insensitive.
    #[test]
    fn pattern_case_insensitive(s in "[a-zA-Z]{1,16}") {
        let p = StringPattern::new(&s.to_ascii_uppercase());
        prop_assert!(p.matches(&s.to_ascii_lowercase()));
    }

    /// IPv4 addresses roundtrip through their dotted-quad rendering.
    #[test]
    fn ip_roundtrip(raw in any::<u32>()) {
        let ip = IpV4(raw);
        prop_assert_eq!(IpV4::parse(&ip.to_string()).unwrap(), ip);
    }

    /// Interning is stable and resolvable for arbitrary batches of strings.
    #[test]
    fn interner_stability(strings in proptest::collection::vec("[ -~]{0,20}", 1..40)) {
        let mut interner = Interner::new();
        let syms: Vec<_> = strings.iter().map(|s| interner.intern(s)).collect();
        for (s, sym) in strings.iter().zip(&syms) {
            prop_assert_eq!(interner.resolve(*sym), s.as_str());
            prop_assert_eq!(interner.intern(s), *sym);
        }
    }

    /// Window intersection is commutative and contained in both operands.
    #[test]
    fn window_intersect_props(a in -1000i64..1000, b in 0i64..1000, c in -1000i64..1000, d in 0i64..1000) {
        let w1 = TimeWindow::new(Timestamp(a), Timestamp(a + b));
        let w2 = TimeWindow::new(Timestamp(c), Timestamp(c + d));
        let i12 = w1.intersect(&w2);
        let i21 = w2.intersect(&w1);
        prop_assert_eq!(i12.is_empty(), i21.is_empty());
        if !i12.is_empty() {
            prop_assert_eq!(i12, i21);
            prop_assert!(i12.start >= w1.start && i12.end <= w1.end);
            prop_assert!(i12.start >= w2.start && i12.end <= w2.end);
        }
    }

    /// Durations render and carry the magnitude they were built from.
    #[test]
    fn duration_units(mins in 1i64..10_000) {
        prop_assert_eq!(Duration::from_mins(mins).micros(), mins * 60_000_000);
    }
}
