//! The paper's live end-to-end investigation (§3), step a5: starting from
//! zero knowledge, an analyst discovers the database exfiltration with four
//! successive AIQL queries over the simulated enterprise.
//!
//! ```sh
//! cargo run --release --example data_exfiltration
//! ```

use aiql::sim::{build_store, scenario_demo, Scale};
use aiql::{Engine, EngineConfig, StoreConfig};

fn main() {
    println!("generating the enterprise + demo APT scenario …");
    let scenario = scenario_demo(Scale::default());
    let store = build_store(&scenario, StoreConfig::default());
    let engine = Engine::new(EngineConfig::default());
    println!("store: {}\n", store.stats().summary());

    let run = |title: &str, src: &str| {
        println!("== {title} ==");
        println!("{}", src.trim());
        let start = std::time::Instant::now();
        match engine.execute_text(&store, src) {
            Ok(table) => {
                println!("-- {} rows in {:?}", table.rows.len(), start.elapsed());
                println!("{}", table.render(store.interner()));
            }
            Err(e) => println!("!! {e}"),
        }
    };

    // Step 1 — no prior knowledge: hunt for abnormal outbound volume from
    // the database server with a frequency-based anomaly model.
    run(
        "step 1: anomaly — who is moving unusual volumes off the DB server?",
        r#"(at "03/19/2018") agentid = 2
window = 1 min, step = 10 sec
proc p write ip i as evt
return p, i, avg(evt.amount) as amt
group by p, i
having amt > 2 * (amt + amt[1] + amt[2]) / 3 and amt > 1000000"#,
    );

    // Step 2 — the anomaly names sbblv.exe → what did it read first?
    run(
        "step 2: what did the suspicious process read?",
        r#"(at "03/19/2018") agentid = 2
proc p["%sbblv%"] read file f as evt
return distinct p, f, evt.amount"#,
    );

    // Step 3 — a database dump! Who created it?
    run(
        "step 3: who created the dump file?",
        r#"(at "03/19/2018") agentid = 2
proc p write file f["%backup1.dmp"] as evt
return distinct p, f"#,
    );

    // Step 4 — sqlservr.exe is legitimate; confirm the full behavior with
    // the temporal chain (the paper's Query 1).
    run(
        "step 4: confirm the end-to-end exfiltration behavior",
        r#"(at "03/19/2018") agentid = 2
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv%"] read file f1 as evt3
proc p4 read || write ip i1[dstip = "172.16.99.129"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1"#,
    );

    println!("investigation of step a5 complete: the attacker used OSQL to dump");
    println!("the database, and sbblv.exe shipped the dump to 172.16.99.129.");
}
