//! Frequency-based anomaly hunting, §2.2.3: sliding windows, aggregation,
//! and access to *historical* aggregate results (`amt[1]` = the value one
//! window earlier) — the construct general-purpose query languages lack.
//!
//! ```sh
//! cargo run --release --example anomaly_hunting
//! ```

use aiql::sim::{build_store, scenario_demo, Scale};
use aiql::{Engine, EngineConfig, StoreConfig};

fn main() {
    let scenario = scenario_demo(Scale::default());
    let store = build_store(&scenario, StoreConfig::default());
    let engine = Engine::new(EngineConfig::default());
    println!("store: {}\n", store.stats().summary());

    let run = |title: &str, src: &str| {
        println!("== {title} ==");
        println!("{}", src.trim());
        match engine.execute_text(&store, src) {
            Ok(table) => println!(
                "-- {} rows\n{}",
                table.rows.len(),
                table.render(store.interner())
            ),
            Err(e) => println!("!! {e}"),
        }
    };

    // Moving-average spike: current window's mean transfer must exceed
    // twice the 3-window moving average (the paper's Query 3 model).
    run(
        "moving-average spike on the database server",
        r#"(at "03/19/2018") agentid = 2
window = 1 min, step = 10 sec
proc p write ip i as evt
return p, i, avg(evt.amount) as amt
group by p, i
having amt > 2 * (amt + amt[1] + amt[2]) / 3 and amt > 1000000"#,
    );

    // Count-based model: bursts of distinct outbound transfers.
    run(
        "transfer bursts (count per 5-minute window)",
        r#"(at "03/19/2018") agentid = 2
window = 5 min, step = 1 min
proc p write ip i as evt
return p, count(evt.amount) as n, sum(evt.amount) as total
group by p
having n > 10 and total > 10000000"#,
    );

    // Comparing against history only: sudden appearance of a new talker
    // (nothing in the previous window, lots now).
    run(
        "new talker: volume where the previous window was quiet",
        r#"(at "03/19/2018") agentid = 2
window = 2 min, step = 2 min
proc p write ip i as evt
return p, sum(evt.amount) as vol
group by p
having vol > 8000000 and vol[1] < 1000"#,
    );

    println!("the spike, the burst, and the new-talker models all converge on");
    println!("sbblv.exe — the implant exfiltrating the database dump.");
}
