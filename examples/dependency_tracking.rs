//! Dependency (causality) tracking, §2.2.2: forward-track the malware's
//! ramification across hosts, and backward-track a suspicious channel to
//! its root cause — the workhorse of attack-entry discovery.
//!
//! ```sh
//! cargo run --release --example dependency_tracking
//! ```

use aiql::sim::{build_store, scenario_demo, Scale};
use aiql::{Engine, EngineConfig, StoreConfig};

fn main() {
    let scenario = scenario_demo(Scale::default());
    let store = build_store(&scenario, StoreConfig::default());
    let engine = Engine::new(EngineConfig::default());
    println!("store: {}\n", store.stats().summary());

    let run = |title: &str, src: &str| {
        println!("== {title} ==");
        println!("{}", src.trim());
        match engine.execute_text(&store, src) {
            Ok(table) => println!(
                "-- {} rows\n{}",
                table.rows.len(),
                table.render(store.interner())
            ),
            Err(e) => println!("!! {e}"),
        }
    };

    // Forward tracking (ramification): where did the web-server malware
    // spread? The `connect` edge crosses hosts (agent 1 → agent 0).
    run(
        "forward: ramification of sbblv.exe from the web server",
        r#"(at "03/19/2018")
forward: proc p1["%sbblv%", agentid = 1] ->[connect] proc p2[agentid = 0]
->[write] file f2["%sbblv%"]
return p1, p2, f2"#,
    );

    // Backward tracking (root cause): who ultimately spawned the telnet
    // reverse shell on the web server?
    run(
        "backward: root cause of the telnet reverse shell",
        r#"(at "03/19/2018")
backward: proc p3["%telnet"] <-[start] proc p2["%/bin/sh"] <-[start] proc p1
return p1, p2, p3"#,
    );

    // The rewrite in action: every dependency query compiles to an
    // equivalent multievent query (§2.3). Show the compiled form.
    let dep = r#"forward: proc p1["%sbblv%", agentid = 1] ->[connect] proc p2[agentid = 0]
->[write] file f2["%sbblv%"]
return p1, p2, f2"#;
    if let aiql::Query::Dependency(d) = aiql::parse_query(dep).unwrap() {
        let m = aiql::lang::dependency_to_multievent(&d).unwrap();
        println!("== compiled multievent form ==");
        println!(
            "{}",
            aiql::lang::pretty::print_query(&aiql::Query::Multievent(m))
        );
    }
}
