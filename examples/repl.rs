//! An interactive AIQL shell — the terminal stand-in for the paper's web
//! UI: enter queries, see execution time and an interactive-ish table, get
//! caret-precise syntax errors, and inspect the generated SQL/Cypher.
//!
//! ```sh
//! cargo run --release --example repl
//! ```
//!
//! Meta-commands:
//!   :help            this help
//!   :demo            load the demo-attack scenario (Figure 4 dataset)
//!   :case            load the case-study scenario (Figure 5 dataset)
//!   :stats           store statistics
//!   :catalog         list the investigation query catalog for the loaded scenario
//!   :run <id>        run a catalog query by id (e.g. :run a5-5)
//!   :sql <query>     show the equivalent SQL instead of executing
//!   :cypher <query>  show the equivalent Cypher
//!   :explain <query> show the execution plan (scheduling, estimates)
//!   :csv <query>     execute and print CSV instead of a table
//!   :quit            exit

use std::io::{BufRead, Write};

use aiql::sim::{
    build_store, case_study_queries, demo_queries, scenario_case_study, scenario_demo,
    CatalogQuery, Scale,
};
use aiql::{Engine, EngineConfig, EventStore, StoreConfig};

struct Repl {
    store: EventStore,
    engine: Engine,
    catalog: Vec<CatalogQuery>,
}

impl Repl {
    fn load_demo(&mut self) {
        let scenario = scenario_demo(Scale::default());
        self.store = build_store(&scenario, StoreConfig::default());
        self.catalog = demo_queries();
        println!("loaded demo scenario: {}", self.store.stats().summary());
    }

    fn load_case(&mut self) {
        let scenario = scenario_case_study(Scale::default());
        self.store = build_store(&scenario, StoreConfig::default());
        self.catalog = case_study_queries();
        println!(
            "loaded case-study scenario: {}",
            self.store.stats().summary()
        );
    }

    fn execute(&self, src: &str) {
        let start = std::time::Instant::now();
        match self.engine.execute_text(&self.store, src) {
            Ok(table) => {
                let elapsed = start.elapsed();
                println!("{}", table.render(self.store.interner()));
                println!("{} rows in {elapsed:?}", table.rows.len());
            }
            Err(aiql::EngineError::Parse(e)) => println!("{}", e.render(src)),
            Err(e) => println!("error: {e}"),
        }
    }

    fn dispatch(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        if let Some(rest) = line.strip_prefix(':') {
            let (cmd, arg) = match rest.split_once(' ') {
                Some((c, a)) => (c, a.trim()),
                None => (rest, ""),
            };
            match cmd {
                "quit" | "q" | "exit" => return false,
                "help" => println!("see the header of examples/repl.rs for commands"),
                "demo" => self.load_demo(),
                "case" => self.load_case(),
                "stats" => println!("{}", self.store.stats().summary()),
                "catalog" => {
                    for q in &self.catalog {
                        println!("{:6} {}", q.id, q.description);
                    }
                }
                "run" => match self.catalog.iter().find(|q| q.id == arg) {
                    Some(q) => {
                        println!("{}", q.aiql.trim());
                        self.execute(&q.aiql.clone());
                    }
                    None => println!("unknown catalog id {arg:?} (try :catalog)"),
                },
                "sql" => match aiql::parse_query(arg) {
                    Ok(q) => println!("{}", aiql::lang::sql::to_sql(&q)),
                    Err(e) => println!("{}", e.render(arg)),
                },
                "cypher" => match aiql::parse_query(arg) {
                    Ok(q) => println!("{}", aiql::lang::cypher::to_cypher(&q)),
                    Err(e) => println!("{}", e.render(arg)),
                },
                "explain" => match aiql::parse_query(arg) {
                    Ok(q) => match aiql::engine::explain(&self.store, &q, self.engine.config()) {
                        Ok(plan) => println!("{}", plan.render()),
                        Err(e) => println!("error: {e}"),
                    },
                    Err(e) => println!("{}", e.render(arg)),
                },
                "csv" => match self.engine.execute_text(&self.store, arg) {
                    Ok(table) => print!("{}", table.to_csv(self.store.interner())),
                    Err(aiql::EngineError::Parse(e)) => println!("{}", e.render(arg)),
                    Err(e) => println!("error: {e}"),
                },
                other => println!("unknown command :{other} (try :help)"),
            }
            return true;
        }
        self.execute(line);
        true
    }
}

fn main() {
    let mut repl = Repl {
        store: EventStore::default(),
        engine: Engine::new(EngineConfig::default()),
        catalog: Vec::new(),
    };
    println!("AIQL shell — :help for commands, :demo to load data, :quit to exit");
    repl.load_demo();

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("aiql> ");
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else { break };
        if !repl.dispatch(&line) {
            break;
        }
    }
}
