//! Quickstart: ingest a handful of system events and run one query of each
//! kind (multievent, dependency, anomaly).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use aiql::model::{AgentId, Operation, Timestamp};
use aiql::{AiqlSystem, EntitySpec, RawEvent};

fn main() {
    let mut system = AiqlSystem::new();

    // A tiny attack trace on host 1: cmd starts osql, the SQL server writes
    // a dump, malware reads it and ships it to 172.16.99.129.
    let t0 = Timestamp::from_date(2018, 3, 19);
    let s = |secs: i64| t0 + aiql::model::Duration::from_secs(54_000 + secs);
    let cmd = EntitySpec::process(101, "C:\\Windows\\System32\\cmd.exe", "dbadmin");
    let osql = EntitySpec::process(102, "C:\\MSSQL\\osql.exe", "dbadmin");
    let sqlservr = EntitySpec::process(103, "C:\\MSSQL\\sqlservr.exe", "mssql");
    let malware = EntitySpec::process(104, "C:\\Temp\\sbblv.exe", "dbadmin");
    let dump = EntitySpec::file("C:\\dumps\\backup1.dmp", "mssql");
    let exfil = EntitySpec::tcp(
        aiql::model::IpV4::from_octets(10, 0, 0, 12),
        42_107,
        aiql::model::IpV4::from_octets(172, 16, 99, 129),
        443,
    );

    let mut events = vec![
        RawEvent::instant(AgentId(1), Operation::Start, cmd, osql.clone(), s(0), 0),
        RawEvent::instant(
            AgentId(1),
            Operation::Write,
            sqlservr,
            dump.clone(),
            s(60),
            1 << 28,
        ),
        RawEvent::instant(
            AgentId(1),
            Operation::Read,
            malware.clone(),
            dump,
            s(120),
            1 << 28,
        ),
    ];
    for i in 0..10 {
        events.push(RawEvent::instant(
            AgentId(1),
            Operation::Write,
            malware.clone(),
            exfil.clone(),
            s(180 + i * 20),
            8 << 20,
        ));
    }
    // Benign noise.
    for i in 0..50 {
        events.push(RawEvent::instant(
            AgentId(1),
            Operation::Read,
            osql.clone(),
            EntitySpec::file(&format!("C:\\MSSQL\\data\\table{i}.dat"), "mssql"),
            s(i),
            4096,
        ));
    }
    system.ingest(&events);
    println!("store: {}\n", system.store().stats().summary());

    // 1. Multievent query — the paper's Query 1, lightly adapted.
    let multievent = r#"
        (at "03/19/2018")
        proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
        proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
        proc p4["%sbblv.exe"] read file f1 as evt3
        proc p4 read || write ip i1[dstip = "172.16.99.129"] as evt4
        with evt1 before evt2, evt2 before evt3, evt3 before evt4
        return distinct p1, p2, p3, f1, p4, i1
    "#;
    println!("== multievent: data exfiltration behavior ==");
    let table = system.query(multievent).expect("query");
    println!("{}", system.render(&table));

    // 2. Dependency query — what did the malware's dump read lead to?
    let dependency = r#"
        (at "03/19/2018")
        backward: file f["%backup1.dmp"] <-[write] proc p["%sqlservr%"]
        return f, p
    "#;
    println!("== dependency: who produced the dump ==");
    let table = system.query(dependency).expect("query");
    println!("{}", system.render(&table));

    // 3. Anomaly query — volume spike to any destination.
    let anomaly = r#"
        (at "03/19/2018")
        window = 1 min, step = 10 sec
        proc p write ip i as evt
        return p, i, avg(evt.amount) as amt
        group by p, i
        having amt > 2 * (amt + amt[1] + amt[2]) / 3 and amt > 1000000
    "#;
    println!("== anomaly: outbound volume spike ==");
    let table = system.query(anomaly).expect("query");
    println!("{}", system.render(&table));

    // Bonus: show the equivalent SQL the analyst did NOT have to write.
    let parsed = aiql::parse_query(multievent).unwrap();
    println!("== equivalent SQL (generated) ==");
    println!("{}", aiql::lang::sql::to_sql(&parsed));
}
